//! Synthetic matrix and dataset generators.
//!
//! Everything is a deterministic function of a `u64` seed (via the
//! workspace RNG), so experiments are reproducible and every rank of a
//! simulated machine can regenerate identical data.

use sparsela::io::Dataset;
use sparsela::{CooMatrix, CsrMatrix};
use xrng::{rng_from_seed, sample_without_replacement, Rng};

/// A regression dataset with its planted ground truth.
#[derive(Clone, Debug)]
pub struct RegressionData {
    /// The design matrix and responses (`b = A·x⋆ + noise`).
    pub dataset: Dataset,
    /// The planted sparse coefficient vector `x⋆`.
    pub x_star: Vec<f64>,
}

/// A binary-classification dataset with its planted separator.
#[derive(Clone, Debug)]
pub struct ClassificationData {
    /// The design matrix and ±1 labels.
    pub dataset: Dataset,
    /// The planted hyperplane normal `w⋆`.
    pub w_star: Vec<f64>,
}

/// Uniformly sparse matrix: each row draws `Binomial(cols, density)`-many
/// distinct column positions (sampled without replacement) with standard
/// normal values. Matches the paper's Table I assumption of "`fmn` non-zeros
/// that are uniformly distributed".
pub fn uniform_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = rng_from_seed(seed);
    let mut coo = CooMatrix::new(rows, cols);
    for i in 0..rows {
        let k = binomial(&mut rng, cols, density);
        let mut sel = sample_without_replacement(&mut rng, cols, k);
        sel.sort_unstable();
        for j in sel {
            coo.push(i, j, rng.next_gaussian());
        }
    }
    coo.to_csr()
}

/// Power-law sparse matrix: column popularity follows a Zipf(`skew`)
/// distribution, so a few features are very common and most are rare —
/// the structure of bag-of-words / URL-feature data (news20, rcv1, url),
/// and the source of the load imbalance the paper reports for 1D-column
/// partitioned SVM (§VI: "load balancing issues ... for rcv1 and news20").
pub fn powerlaw_sparse(rows: usize, cols: usize, density: f64, skew: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    assert!(skew >= 0.0, "skew must be nonnegative");
    let mut rng = rng_from_seed(seed);
    // Cumulative Zipf weights over columns.
    let mut cdf = Vec::with_capacity(cols);
    let mut acc = 0.0f64;
    for j in 0..cols {
        acc += 1.0 / ((j + 1) as f64).powf(skew);
        cdf.push(acc);
    }
    let total = acc;
    let mean_row_nnz = density * cols as f64;
    let mut coo = CooMatrix::new(rows, cols);
    let mut row_cols: Vec<usize> = Vec::new();
    for i in 0..rows {
        // Row lengths are themselves dispersed (documents vary in length):
        // draw from a geometric-ish mixture around the mean.
        let target = ((mean_row_nnz * (0.25 + 1.5 * rng.next_f64())).round() as usize).max(1);
        row_cols.clear();
        // Sample with rejection of duplicates; the duplicate rate is low
        // unless target approaches cols, where we fall back to uniform.
        if target * 4 >= cols {
            row_cols.extend(sample_without_replacement(&mut rng, cols, target.min(cols)));
        } else {
            let mut attempts = 0;
            while row_cols.len() < target && attempts < 20 * target {
                let u = rng.next_f64() * total;
                let j = cdf.partition_point(|&c| c < u).min(cols - 1);
                if !row_cols.contains(&j) {
                    row_cols.push(j);
                }
                attempts += 1;
            }
        }
        row_cols.sort_unstable();
        for &j in row_cols.iter() {
            coo.push(i, j, rng.next_gaussian());
        }
    }
    coo.to_csr()
}

/// Deterministic per-column nonzero counts for a power-law matrix that is
/// generated column-at-a-time at out-of-core scale.
///
/// Column `j` receives a Zipf(`skew`) share of `rows·cols·density` total
/// nonzeros, clamped to `[1, rows]`. This is a pure function of the shape
/// (no RNG), so the shard planner can consume the histogram *before* any
/// matrix data exists — the nnz-aware plan (`datagen::partition::shard_plan`)
/// and the streamed generation pass then agree exactly on every column's
/// length without a scan.
pub fn powerlaw_col_nnz(rows: usize, cols: usize, density: f64, skew: f64) -> Vec<u64> {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    assert!(skew >= 0.0, "skew must be nonnegative");
    if rows == 0 || cols == 0 || density == 0.0 {
        return vec![0; cols];
    }
    let target = density * rows as f64 * cols as f64;
    let weights: Vec<f64> = (0..cols)
        .map(|j| 1.0 / ((j + 1) as f64).powf(skew))
        .collect();
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| ((w / total * target).round() as u64).clamp(1, rows as u64))
        .collect()
}

/// One column of a streamed power-law matrix: `nnz` sorted distinct row
/// indices with standard-normal values, appended into caller-owned buffers
/// (cleared first) so a generation loop over millions of columns allocates
/// nothing.
///
/// The generator is seeded per column from `(seed, col)`, so each column is
/// a pure function of those two values: columns can be produced in any
/// order, in parallel, or re-produced later for verification, and the
/// result is bitwise identical every time. Distinct indices come from a
/// batched draw→sort→dedup loop (equivalent to sequential rejection of
/// duplicates, hence a uniform `nnz`-subset) which stays `O(nnz log nnz)`
/// even for the clamped head columns where Floyd's quadratic duplicate
/// scan would be intractable.
pub fn powerlaw_column_into(
    seed: u64,
    rows: usize,
    col: usize,
    nnz: usize,
    indices: &mut Vec<usize>,
    values: &mut Vec<f64>,
) {
    indices.clear();
    values.clear();
    let k = nnz.min(rows);
    if k == 0 {
        return;
    }
    let mut rng = rng_from_seed(seed ^ (col as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if k * 4 >= rows {
        // Dense-ish column: partial Fisher–Yates beats rejection here.
        let mut sel = sample_without_replacement(&mut rng, rows, k);
        sel.sort_unstable();
        indices.extend(sel);
    } else {
        indices.reserve(k);
        while indices.len() < k {
            for _ in 0..(k - indices.len()) {
                indices.push(rng.next_index(rows));
            }
            indices.sort_unstable();
            indices.dedup();
        }
    }
    values.extend(indices.iter().map(|_| rng.next_gaussian()));
}

/// Fully dense Gaussian matrix in CSR form (epsilon/gisette/leu/duke class).
pub fn dense_gaussian(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    let mut rng = rng_from_seed(seed);
    let mut indptr = Vec::with_capacity(rows + 1);
    let mut indices = Vec::with_capacity(rows * cols);
    let mut values = Vec::with_capacity(rows * cols);
    indptr.push(0);
    for _ in 0..rows {
        for j in 0..cols {
            indices.push(j);
            values.push(rng.next_gaussian());
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts(rows, cols, indptr, indices, values)
}

/// Planted sparse regression: `b = A x⋆ + σ·noise` with `support`-sparse
/// `x⋆`. The Lasso problems in §III–IV are solved on data of this type so
/// that objective decrease and support recovery can both be checked.
pub fn planted_regression(
    a: CsrMatrix,
    support: usize,
    noise_sigma: f64,
    seed: u64,
) -> RegressionData {
    let n = a.cols();
    assert!(support <= n, "support larger than feature count");
    let mut rng = rng_from_seed(seed ^ 0x9E37_79B9);
    let mut x_star = vec![0.0; n];
    for j in sample_without_replacement(&mut rng, n, support) {
        // Coefficients bounded away from zero so the support is detectable.
        let sign = if rng.next_bool(0.5) { 1.0 } else { -1.0 };
        x_star[j] = sign * (1.0 + rng.next_f64());
    }
    let mut b = a.spmv(&x_star);
    for bi in &mut b {
        *bi += noise_sigma * rng.next_gaussian();
    }
    RegressionData {
        dataset: Dataset { a, b },
        x_star,
    }
}

/// Planted binary classification: labels `sign(A w⋆ + margin-noise)` with a
/// dense Gaussian separator; a `flip_prob` fraction of labels is flipped so
/// the problem is not trivially separable (support vectors exist).
pub fn binary_classification(a: CsrMatrix, flip_prob: f64, seed: u64) -> ClassificationData {
    let n = a.cols();
    let mut rng = rng_from_seed(seed ^ 0x5851_F42D);
    let w_star: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
    let scores = a.spmv(&w_star);
    let b: Vec<f64> = scores
        .iter()
        .map(|&s| {
            let y = if s >= 0.0 { 1.0 } else { -1.0 };
            if rng.next_bool(flip_prob) {
                -y
            } else {
                y
            }
        })
        .collect();
    ClassificationData {
        dataset: Dataset { a, b },
        w_star,
    }
}

/// Binomial sampler: inversion for small `n·p`, normal approximation for
/// large (adequate for row-length generation; clamped to `[0, n]`).
fn binomial(rng: &mut Rng, n: usize, p: f64) -> usize {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if mean < 30.0 {
        // Direct inversion via waiting times (geometric skips) — O(mean).
        let mut count = 0usize;
        let mut i = 0usize;
        let log_q = (1.0 - p).ln();
        loop {
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            let skip = (u.ln() / log_q).floor() as usize;
            i += skip + 1;
            if i > n {
                break;
            }
            count += 1;
        }
        count
    } else {
        let sd = (mean * (1.0 - p)).sqrt();
        let draw = mean + sd * rng.next_gaussian();
        draw.round().clamp(0.0, n as f64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sparse_density_is_close() {
        let a = uniform_sparse(400, 300, 0.05, 1);
        let d = a.density();
        assert!((d - 0.05).abs() < 0.01, "density {d}");
        assert_eq!((a.rows(), a.cols()), (400, 300));
    }

    #[test]
    fn uniform_sparse_is_deterministic() {
        assert_eq!(
            uniform_sparse(50, 40, 0.1, 7),
            uniform_sparse(50, 40, 0.1, 7)
        );
        assert_ne!(
            uniform_sparse(50, 40, 0.1, 7),
            uniform_sparse(50, 40, 0.1, 8)
        );
    }

    #[test]
    fn powerlaw_has_skewed_columns() {
        let a = powerlaw_sparse(2000, 500, 0.02, 1.1, 2).to_csc();
        let mut nnz: Vec<usize> = (0..500).map(|j| a.col_nnz(j)).collect();
        let total: usize = nnz.iter().sum();
        nnz.sort_unstable_by(|x, y| y.cmp(x));
        let top_decile: usize = nnz[..50].iter().sum();
        assert!(
            top_decile as f64 > 0.35 * total as f64,
            "top 10% of columns hold {top_decile}/{total} nnz — not skewed"
        );
        // density still in the right ballpark
        let d = total as f64 / (2000.0 * 500.0);
        assert!((d - 0.02).abs() < 0.01, "density {d}");
    }

    #[test]
    fn dense_gaussian_is_dense_and_standardish() {
        let a = dense_gaussian(100, 50, 3);
        assert_eq!(a.nnz(), 5000);
        let norm_sq: f64 = a.row_norms_sq().iter().sum();
        let mean_sq = norm_sq / 5000.0;
        assert!((mean_sq - 1.0).abs() < 0.1, "E[x²] = {mean_sq}");
    }

    #[test]
    fn planted_regression_residual_is_noise_sized() {
        let a = dense_gaussian(200, 50, 4);
        let reg = planted_regression(a, 5, 0.1, 4);
        let support = reg.x_star.iter().filter(|v| v.abs() > 0.0).count();
        assert_eq!(support, 5);
        let pred = reg.dataset.a.spmv(&reg.x_star);
        let res: f64 = pred
            .iter()
            .zip(&reg.dataset.b)
            .map(|(p, b)| (p - b) * (p - b))
            .sum::<f64>()
            / 200.0;
        // residual variance ≈ σ² = 0.01
        assert!(res < 0.03, "mean squared residual {res}");
    }

    #[test]
    fn classification_labels_match_planted_model_mostly() {
        let a = dense_gaussian(500, 30, 5);
        let cls = binary_classification(a, 0.05, 5);
        let scores = cls.dataset.a.spmv(&cls.w_star);
        let agree = scores
            .iter()
            .zip(&cls.dataset.b)
            .filter(|(s, b)| (s.signum() - **b).abs() < 1e-9)
            .count();
        let frac = agree as f64 / 500.0;
        assert!(frac > 0.9, "agreement {frac}");
        assert!(cls.dataset.b.iter().all(|&b| b == 1.0 || b == -1.0));
    }

    #[test]
    fn powerlaw_col_nnz_is_a_clamped_zipf_histogram() {
        let nnz = powerlaw_col_nnz(1000, 400, 0.02, 0.8);
        assert_eq!(nnz.len(), 400);
        // Monotone nonincreasing (Zipf by column index) and clamped.
        assert!(nnz.windows(2).all(|w| w[0] >= w[1]));
        assert!(nnz.iter().all(|&k| (1..=1000).contains(&k)));
        let total: u64 = nnz.iter().sum();
        let want = 0.02 * 1000.0 * 400.0;
        assert!(
            (total as f64 - want).abs() < 0.1 * want,
            "total nnz {total} vs target {want}"
        );
        // Head column is clamped to rows when skew concentrates hard enough.
        let hard = powerlaw_col_nnz(100, 10_000, 0.05, 1.2);
        assert_eq!(hard[0], 100);
    }

    #[test]
    fn powerlaw_column_is_sorted_distinct_and_reproducible() {
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        for &(rows, col, nnz) in &[(1000usize, 0usize, 900usize), (1000, 17, 40), (8, 3, 8)] {
            powerlaw_column_into(42, rows, col, nnz, &mut idx, &mut val);
            assert_eq!(idx.len(), nnz.min(rows));
            assert_eq!(val.len(), idx.len());
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(idx.iter().all(|&i| i < rows));
            let (mut idx2, mut val2) = (Vec::new(), Vec::new());
            powerlaw_column_into(42, rows, col, nnz, &mut idx2, &mut val2);
            assert_eq!(idx, idx2);
            assert!(val
                .iter()
                .zip(&val2)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        // Different column or seed → different draw.
        powerlaw_column_into(42, 1000, 17, 40, &mut idx, &mut val);
        let (mut idx3, mut val3) = (Vec::new(), Vec::new());
        powerlaw_column_into(42, 1000, 18, 40, &mut idx3, &mut val3);
        assert_ne!(idx, idx3);
        powerlaw_column_into(43, 1000, 17, 40, &mut idx3, &mut val3);
        assert_ne!((&idx, &val), (&idx3, &val3));
    }

    #[test]
    fn streamed_columns_assemble_into_a_valid_csc() {
        let (rows, cols) = (300, 120);
        let nnz = powerlaw_col_nnz(rows, cols, 0.03, 0.7);
        let mut indptr = vec![0usize];
        let (mut indices, mut values) = (Vec::new(), Vec::new());
        let (mut ci, mut cv) = (Vec::new(), Vec::new());
        for (j, &n) in nnz.iter().enumerate() {
            powerlaw_column_into(9, rows, j, n as usize, &mut ci, &mut cv);
            indices.extend_from_slice(&ci);
            values.extend_from_slice(&cv);
            indptr.push(indices.len());
        }
        let a = sparsela::CscMatrix::from_parts(rows, cols, indptr, indices, values);
        assert_eq!(a.nnz() as u64, nnz.iter().sum::<u64>());
        for (j, &n) in nnz.iter().enumerate() {
            assert_eq!(a.col_nnz(j) as u64, n);
        }
    }

    #[test]
    fn binomial_moments() {
        let mut rng = rng_from_seed(6);
        // small-mean path
        let n_trials = 20_000;
        let mut sum = 0usize;
        for _ in 0..n_trials {
            sum += binomial(&mut rng, 100, 0.05);
        }
        let mean = sum as f64 / n_trials as f64;
        assert!((mean - 5.0).abs() < 0.15, "small-path mean {mean}");
        // large-mean path
        let mut sum = 0usize;
        for _ in 0..n_trials {
            sum += binomial(&mut rng, 1000, 0.5);
        }
        let mean = sum as f64 / n_trials as f64;
        assert!((mean - 500.0).abs() < 2.0, "large-path mean {mean}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = rng_from_seed(7);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
    }
}
