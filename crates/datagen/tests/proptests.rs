//! Property-based tests of the dataset substrate and the partitioners.

use datagen::{
    balanced_partition, binary_classification, block_partition, bucket_counts, imbalance_factor,
    planted_regression, uniform_sparse,
};
use proptest::prelude::*;

proptest! {
    /// Block partitions exactly cover the domain with near-equal parts.
    #[test]
    fn block_partition_covers(n in 0usize..5000, p in 1usize..64) {
        let part = block_partition(n, p);
        prop_assert_eq!(part.parts(), p);
        prop_assert_eq!(part.domain(), n);
        let total: usize = (0..p).map(|r| part.range(r).len()).sum();
        prop_assert_eq!(total, n);
        let sizes: Vec<usize> = (0..p).map(|r| part.range(r).len()).collect();
        let (mn, mx) = (
            *sizes.iter().min().expect("nonempty"),
            *sizes.iter().max().expect("nonempty"),
        );
        prop_assert!(mx - mn <= 1);
        // owner agrees with range membership
        for r in 0..p {
            for i in part.range(r) {
                prop_assert_eq!(part.owner(i), r);
            }
        }
    }

    /// Balanced partitions cover the domain and never do worse than ~one
    /// max-weight item per part above the naive lower bound.
    #[test]
    fn balanced_partition_covers_and_bounds(
        weights in proptest::collection::vec(0u64..1000, 1..300),
        p in 1usize..32,
    ) {
        let part = balanced_partition(&weights, p);
        prop_assert_eq!(part.parts(), p);
        prop_assert_eq!(part.domain(), weights.len());
        let total: u64 = weights.iter().sum();
        if total > 0 {
            let mean = total as f64 / p as f64;
            let wmax = *weights.iter().max().expect("nonempty") as f64;
            for r in 0..p {
                let w: u64 = weights[part.range(r)].iter().sum();
                // greedy prefix cuts overshoot by at most one item
                prop_assert!(
                    (w as f64) <= mean + wmax + 1e-9,
                    "part {r} weight {w} exceeds mean {mean} + max item {wmax}"
                );
            }
            prop_assert!(imbalance_factor(&weights, &part) >= 1.0 - 1e-12);
        }
    }

    /// bucket_counts attributes every index exactly once.
    #[test]
    fn bucket_counts_total(n in 1usize..2000, p in 1usize..32, seed in any::<u64>()) {
        let part = block_partition(n, p);
        let mut rng = xrng::rng_from_seed(seed);
        let k = 1 + rng.next_index(n.min(50));
        let mut idx = xrng::sample_without_replacement(&mut rng, n, k);
        idx.sort_unstable();
        let mut out = vec![0u64; p];
        bucket_counts(&idx, &part, &mut out);
        prop_assert_eq!(out.iter().sum::<u64>(), k as u64);
    }

    /// Generated matrices have the declared shape and in-range density.
    #[test]
    fn uniform_sparse_shape_density(m in 1usize..200, n in 1usize..100, d in 0.0f64..0.5, seed in any::<u64>()) {
        let a = uniform_sparse(m, n, d, seed);
        prop_assert_eq!((a.rows(), a.cols()), (m, n));
        prop_assert!(a.nnz() <= m * n);
        // CSR invariants hold by construction (from_parts validates), so
        // converting exercises them:
        let _ = a.to_csc();
    }

    /// Planted regression: b − A·x⋆ has noise-scale norm.
    #[test]
    fn planted_regression_noise_scale(seed in any::<u64>(), sigma in 0.01f64..1.0) {
        let a = uniform_sparse(80, 40, 0.2, seed);
        let reg = planted_regression(a, 5, sigma, seed);
        let pred = reg.dataset.a.spmv(&reg.x_star);
        let mse: f64 = pred
            .iter()
            .zip(&reg.dataset.b)
            .map(|(p, b)| (p - b) * (p - b))
            .sum::<f64>()
            / 80.0;
        // mse ≈ σ²; allow wide slack for small-sample noise
        prop_assert!(mse < 4.0 * sigma * sigma + 1e-9, "mse {mse} vs σ² {}", sigma * sigma);
    }

    /// Classification labels are exactly ±1 and generation is deterministic.
    #[test]
    fn classification_labels(seed in any::<u64>()) {
        let a = uniform_sparse(60, 20, 0.3, seed);
        let c1 = binary_classification(a.clone(), 0.1, seed);
        let c2 = binary_classification(a, 0.1, seed);
        prop_assert!(c1.dataset.b.iter().all(|&b| b == 1.0 || b == -1.0));
        prop_assert_eq!(c1.dataset.b, c2.dataset.b);
        prop_assert_eq!(c1.w_star, c2.w_star);
    }
}
