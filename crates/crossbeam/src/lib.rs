//! Vendored stand-in for the `crossbeam` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the *tiny* subset of crossbeam it actually uses: an unbounded
//! MPMC channel with blocking `recv` and disconnect detection. The
//! implementation is a `Mutex<VecDeque>` + `Condvar` — more than enough
//! for `mpisim`'s one-channel-per-ordered-rank-pair wiring, where each
//! channel has exactly one producer and one consumer and throughput is
//! bounded by the simulated collectives, not the lock.

#![warn(missing_docs)]

pub mod channel;
