//! Unbounded MPMC channel: the `crossbeam::channel` API subset used here.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when every receiver has hung up;
/// carries the unsent message back, like crossbeam's.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like crossbeam: Debug without requiring T: Debug, and without leaking
// the message contents.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has hung up.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers once all clones are dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable; `recv` blocks until a
/// message arrives or all senders disconnect.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message; never blocks. Fails only if every receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Block until a message is available or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .ready
                .wait(inner)
                .expect("channel lock poisoned");
        }
    }

    /// Non-blocking receive: `None` when the queue is currently empty
    /// (regardless of disconnect state).
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .inner
            .lock()
            .expect("channel lock poisoned")
            .queue
            .pop_front()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel lock poisoned")
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel lock poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // wake all blocked receivers so they observe the disconnect
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .inner
            .lock()
            .expect("channel lock poisoned")
            .receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).expect("send");
        tx.send(2).expect("send");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).expect("send");
        assert_eq!(h.join().expect("join"), Ok(42));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn clones_keep_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).expect("send via clone");
        assert_eq!(rx.recv(), Ok(9));
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn many_threads_drain_everything() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|k| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(k * 100 + i).expect("send");
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().expect("producer");
        }
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
