//! Property-based tests of the linear-algebra substrate: format
//! conversions are lossless, kernels agree with dense references, Gram
//! matrices are symmetric PSD, factorizations invert.

use proptest::prelude::*;
use sparsela::chol::Cholesky;
use sparsela::eig::{jacobi_eigenvalues, max_eigenvalue};
use sparsela::gram::{
    sampled_cross, sampled_cross_into, sampled_gram, sampled_gram_into, sampled_gram_parallel,
};
use sparsela::io::{read_libsvm, write_libsvm, Dataset};
use sparsela::shard::{verify_store, write_csc, write_csr, ShardStore, StreamingMatrix};
use sparsela::GramWorkspace;
use sparsela::{vecops, CooMatrix, DenseMatrix};
use std::io::Cursor;

/// Per-case counter so concurrent proptest cases get distinct shard dirs.
static SHARD_CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn shard_case_dir(axis: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sparsela-shard-prop-{}-{}-{}",
        std::process::id(),
        SHARD_CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        axis
    ))
}

/// Strategy: a random sparse matrix as (rows, cols, triplets).
fn sparse_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..24, 1usize..24).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n, -10.0f64..10.0), 0..(m * n).min(64)).prop_map(
            move |trips| {
                let mut coo = CooMatrix::new(m, n);
                for (i, j, v) in trips {
                    coo.push(i, j, v);
                }
                coo
            },
        )
    })
}

proptest! {
    /// CSR ↔ CSC ↔ dense conversions are lossless.
    #[test]
    fn format_conversions_roundtrip(coo in sparse_matrix()) {
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let (d1, d2) = (csr.to_dense(), csc.to_dense());
        prop_assert_eq!(d1.as_slice(), d2.as_slice());
        prop_assert_eq!(&csr.to_csc(), &csc);
        prop_assert_eq!(&csc.to_csr(), &csr);
        prop_assert_eq!(csr.nnz(), csc.nnz());
    }

    /// SpMV agrees with the dense GEMV for both formats, and is linear.
    #[test]
    fn spmv_matches_dense_and_is_linear(coo in sparse_matrix(), seed in any::<u64>()) {
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let d = csr.to_dense();
        let mut rng = xrng::rng_from_seed(seed);
        let x: Vec<f64> = (0..csr.cols()).map(|_| rng.next_gaussian()).collect();
        let y: Vec<f64> = (0..csr.cols()).map(|_| rng.next_gaussian()).collect();
        let dense = d.gemv(&x);
        for (a, b) in csr.spmv(&x).iter().zip(&dense) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in csc.spmv(&x).iter().zip(&dense) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // linearity: A(x + 2y) = Ax + 2Ay
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + 2.0 * b).collect();
        let lhs = csr.spmv(&xy);
        let ax = csr.spmv(&x);
        let ay = csr.spmv(&y);
        for i in 0..lhs.len() {
            prop_assert!((lhs[i] - (ax[i] + 2.0 * ay[i])).abs() < 1e-8);
        }
    }

    /// spmv_t is the adjoint: ⟨Ax, u⟩ = ⟨x, Aᵀu⟩.
    #[test]
    fn spmv_t_is_adjoint(coo in sparse_matrix(), seed in any::<u64>()) {
        let csr = coo.to_csr();
        let mut rng = xrng::rng_from_seed(seed);
        let x: Vec<f64> = (0..csr.cols()).map(|_| rng.next_gaussian()).collect();
        let u: Vec<f64> = (0..csr.rows()).map(|_| rng.next_gaussian()).collect();
        let lhs = vecops::dot(&csr.spmv(&x), &u);
        let rhs = vecops::dot(&x, &csr.spmv_t(&u));
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    /// Sampled Gram matrices are symmetric PSD and match the dense product.
    #[test]
    fn gram_is_symmetric_psd(coo in sparse_matrix(), seed in any::<u64>()) {
        let csc = coo.to_csc();
        let n = csc.cols();
        let mut rng = xrng::rng_from_seed(seed);
        let k = 1 + rng.next_index(n.min(6));
        let sel = xrng::sample_without_replacement(&mut rng, n, k);
        let g = sampled_gram(&csc, &sel);
        prop_assert!(g.is_symmetric(1e-12));
        // PSD via random quadratic forms
        for _ in 0..8 {
            let x: Vec<f64> = (0..k).map(|_| rng.next_gaussian()).collect();
            let q = vecops::dot(&x, &g.gemv(&x));
            prop_assert!(q >= -1e-9, "quadratic form {q}");
        }
        // matches dense AᵀA restricted to sel
        let d = csc.to_dense();
        for a in 0..k {
            for b in 0..k {
                let expect: f64 = (0..csc.rows())
                    .map(|i| d.get(i, sel[a]) * d.get(i, sel[b]))
                    .sum();
                prop_assert!((g.get(a, b) - expect).abs() < 1e-8);
            }
        }
    }

    /// Cross products match per-column dots.
    #[test]
    fn cross_matches_column_dots(coo in sparse_matrix(), seed in any::<u64>()) {
        let csc = coo.to_csc();
        let mut rng = xrng::rng_from_seed(seed);
        let v: Vec<f64> = (0..csc.rows()).map(|_| rng.next_gaussian()).collect();
        let sel: Vec<usize> = (0..csc.cols().min(5)).collect();
        let c = sampled_cross(&csc, &sel, &[&v]);
        for (a, &j) in sel.iter().enumerate() {
            let expect = csc.col(j).dot_dense(&v);
            prop_assert!((c.get(a, 0) - expect).abs() < 1e-10);
        }
    }

    /// Jacobi eigenvalues satisfy trace and Frobenius identities, and
    /// λmax bounds the Rayleigh quotient.
    #[test]
    fn eig_invariants(seed in any::<u64>(), n in 1usize..10, m in 1usize..16) {
        let mut rng = xrng::rng_from_seed(seed);
        let data: Vec<f64> = (0..m * n).map(|_| rng.next_gaussian()).collect();
        let g = DenseMatrix::from_vec(m, n, data).gram();
        let eigs = jacobi_eigenvalues(&g);
        let trace: f64 = (0..n).map(|i| g.get(i, i)).sum();
        let esum: f64 = eigs.iter().sum();
        prop_assert!((trace - esum).abs() < 1e-7 * trace.abs().max(1.0));
        let lmax = max_eigenvalue(&g);
        for _ in 0..4 {
            let x: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
            let nx = vecops::nrm2_sq(&x);
            if nx > 1e-12 {
                let q = vecops::dot(&x, &g.gemv(&x)) / nx;
                prop_assert!(q <= lmax + 1e-7 * lmax.abs().max(1.0));
            }
        }
    }

    /// Cholesky solve really solves (on ridge-shifted Gram matrices).
    #[test]
    fn cholesky_solves(seed in any::<u64>(), n in 1usize..10) {
        let mut rng = xrng::rng_from_seed(seed);
        let data: Vec<f64> = (0..(n + 2) * n).map(|_| rng.next_gaussian()).collect();
        let mut g = DenseMatrix::from_vec(n + 2, n, data).gram();
        for i in 0..n {
            g.set(i, i, g.get(i, i) + 1.0);
        }
        let ch = Cholesky::factor(&g).expect("ridge-shifted Gram is PD");
        let b: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let x = ch.solve(&b);
        let r = vecops::sub(&g.gemv(&x), &b);
        prop_assert!(vecops::nrm2(&r) < 1e-8 * (1.0 + vecops::nrm2(&b)));
    }

    /// LIBSVM serialization round-trips arbitrary datasets.
    #[test]
    fn libsvm_roundtrip(coo in sparse_matrix(), seed in any::<u64>()) {
        let a = coo.to_csr();
        let mut rng = xrng::rng_from_seed(seed);
        let b: Vec<f64> = (0..a.rows()).map(|_| rng.next_gaussian()).collect();
        let cols = a.cols();
        let ds = Dataset { a, b };
        let mut buf = Vec::new();
        write_libsvm(&mut buf, &ds).expect("serialize");
        let back = read_libsvm(Cursor::new(buf), cols).expect("parse");
        prop_assert_eq!(back.a, ds.a);
        prop_assert_eq!(back.b, ds.b);
    }

    /// The pooled sampled Gram is BITWISE identical to the serial kernel
    /// at every thread count — the determinism contract of `saco-par`
    /// (tiles use exactly the serial per-entry arithmetic, merged in
    /// fixed order). Exact `==`, not approximate.
    #[test]
    fn parallel_sampled_gram_is_bitwise_serial(coo in sparse_matrix(), seed in any::<u64>()) {
        let csc = coo.to_csc();
        let n = csc.cols();
        let mut rng = xrng::rng_from_seed(seed);
        let k = 1 + rng.next_index(n.min(12));
        let sel: Vec<usize> = (0..k).map(|_| rng.next_index(n)).collect();
        let serial = sampled_gram(&csc, &sel);
        let mut ws = GramWorkspace::new();
        let mut out = sparsela::DenseMatrix::zeros(0, 0);
        for t in [1usize, 2, 4, 7] {
            let par = sampled_gram_parallel(&csc, &sel, t);
            prop_assert_eq!(par.as_slice(), serial.as_slice(), "threads = {}", t);
            // Workspace reuse across calls must not change a single bit.
            sampled_gram_into(&csc, &sel, t, &mut ws, &mut out);
            prop_assert_eq!(out.as_slice(), serial.as_slice(), "into, threads = {}", t);
        }
    }

    /// `sampled_cross_into` with a reused output matrix is bitwise equal
    /// to the allocating variant, call after call.
    #[test]
    fn cross_into_reuse_is_bitwise(coo in sparse_matrix(), seed in any::<u64>()) {
        let csc = coo.to_csc();
        let mut rng = xrng::rng_from_seed(seed);
        let v: Vec<f64> = (0..csc.rows()).map(|_| rng.next_gaussian()).collect();
        let w: Vec<f64> = (0..csc.rows()).map(|_| rng.next_gaussian()).collect();
        let mut out = sparsela::DenseMatrix::zeros(0, 0);
        for k in [1usize, 2, 5] {
            let sel: Vec<usize> = (0..k.min(csc.cols())).map(|_| rng.next_index(csc.cols())).collect();
            let fresh = sampled_cross(&csc, &sel, &[&v, &w]);
            sampled_cross_into(&csc, &sel, &[&v, &w], &mut out);
            prop_assert_eq!(out.as_slice(), fresh.as_slice());
        }
    }

    /// Blocked parallel dense Gram is bitwise identical to the serial
    /// `gram()` at every thread count.
    #[test]
    fn parallel_dense_gram_is_bitwise_serial(seed in any::<u64>(), m in 1usize..20, n in 1usize..20) {
        let mut rng = xrng::rng_from_seed(seed);
        let a = DenseMatrix::from_vec(m, n, (0..m * n).map(|_| rng.next_gaussian()).collect());
        let serial = a.gram();
        for t in [1usize, 2, 4, 7] {
            let par = a.gram_parallel(t);
            prop_assert_eq!(par.as_slice(), serial.as_slice(), "threads = {}", t);
        }
    }

    /// Symmetric-triangle pack → unpack is the identity, bit for bit, at
    /// any offset inside a larger fused buffer — the invariant the fused
    /// allreduce payload rests on.
    #[test]
    fn sympack_roundtrip_is_identity(seed in any::<u64>(), k in 1usize..24, prefix in 0usize..17) {
        use sparsela::{pack_upper_into, packed_len, unpack_symmetric_into};
        let mut rng = xrng::rng_from_seed(seed);
        // Symmetrize a random square matrix (only the upper triangle of a
        // symmetric matrix travels, so the input must be symmetric).
        let mut g = DenseMatrix::zeros(k, k);
        for a in 0..k {
            for b in a..k {
                let v = rng.next_gaussian();
                g.set(a, b, v);
                g.set(b, a, v);
            }
        }
        let mut buf: Vec<f64> = (0..prefix).map(|_| rng.next_gaussian()).collect();
        pack_upper_into(&g, &mut buf);
        prop_assert_eq!(buf.len(), prefix + packed_len(k));
        let mut out = DenseMatrix::zeros(0, 0);
        let pos = unpack_symmetric_into(&buf, prefix, k, &mut out);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(out.as_slice(), g.as_slice());
    }

    /// Every SIMD microkernel build is bitwise identical: running the
    /// whole rewritten kernel set under `SACO_SIMD=scalar` and
    /// `SACO_SIMD=wide` produces the same bits — BLAS-1 kernels at random
    /// lengths including ragged 4-lane tails, the register-blocked dense
    /// Gram including ragged 64-row chunk edges and sub-tile column
    /// remainders, and the interleaved sampled Gram including ragged
    /// 8-lane scatter tails and duplicate selections. The lane schedule
    /// is the contract; the ISA must not be observable. (All the
    /// mode-crossing assertions live in this one test because the mode
    /// switch is process-global.)
    #[test]
    fn simd_scalar_and_wide_are_bitwise(
        seed in any::<u64>(),
        len in 0usize..70,
        m in 1usize..100,
        n in 1usize..16,
    ) {
        use sparsela::simd::{self, Mode};
        let mut rng = xrng::rng_from_seed(seed);
        let x: Vec<f64> = (0..len).map(|_| rng.next_gaussian()).collect();
        let y: Vec<f64> = (0..len).map(|_| rng.next_gaussian()).collect();
        let alpha = rng.next_gaussian();
        let beta = rng.next_gaussian();
        let a = DenseMatrix::from_vec(m, n, (0..m * n).map(|_| rng.next_gaussian()).collect());
        let (sm, sn) = (1 + rng.next_index(80), 1 + rng.next_index(20));
        let mut coo = CooMatrix::new(sm, sn);
        for _ in 0..rng.next_index(4 * sn.min(sm) + 1) {
            coo.push(rng.next_index(sm), rng.next_index(sn), rng.next_gaussian());
        }
        let csc = coo.to_csc();
        let k = 1 + rng.next_index(12);
        let sel: Vec<usize> = (0..k).map(|_| rng.next_index(sn)).collect();

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        let run = |mode: Mode| {
            simd::set_mode(mode);
            let mut z = y.clone();
            vecops::axpy(alpha, &x, &mut z);
            let mut w = y.clone();
            vecops::axpby(alpha, &x, beta, &mut w);
            let mut s = x.clone();
            vecops::scale(alpha, &mut s);
            (
                vecops::dot(&x, &y).to_bits(),
                vecops::nrm2_sq(&x).to_bits(),
                vecops::nrm2(&x).to_bits(),
                bits(&z),
                bits(&w),
                bits(&s),
                bits(a.gram().as_slice()),
                bits(sampled_gram(&csc, &sel).as_slice()),
            )
        };
        let ambient = simd::mode();
        let scalar = run(Mode::Scalar);
        let wide = run(Mode::Wide);
        simd::set_mode(ambient);
        prop_assert_eq!(scalar, wide);
    }

    /// On-disk shard directories round-trip arbitrary matrices **bitwise**
    /// on both axes — ragged shard boundaries, all-empty slices, label and
    /// nnz sidecars, per-shard byte accounting — and a [`StreamingMatrix`]
    /// squeezed to the tightest two-shard pin budget still serves every
    /// slice bitwise through the prepare/evict cycle.
    #[test]
    fn shard_roundtrip_is_bitwise(coo in sparse_matrix(), seed in any::<u64>(), labeled in any::<bool>()) {
        use sparsela::{MajorSlices, SliceSource};
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let mut rng = xrng::rng_from_seed(seed);
        let labels: Option<Vec<f64>> =
            labeled.then(|| (0..csr.rows()).map(|_| rng.next_gaussian()).collect());

        for axis in ["csc", "csr"] {
            let major = if axis == "csc" { csc.cols() } else { csr.rows() };
            // Ragged bounds: every interior cut is a coin flip, so shards
            // of width 1 and of the whole axis both occur.
            let mut bounds = vec![0usize];
            for b in 1..major {
                if rng.next_bool(0.4) {
                    bounds.push(b);
                }
            }
            bounds.push(major);
            let dir = shard_case_dir(axis);
            let _ = std::fs::remove_dir_all(&dir);
            let manifest = if axis == "csc" {
                write_csc(&dir, &csc, &bounds, labels.as_deref()).expect("write csc shards")
            } else {
                write_csr(&dir, &csr, &bounds, labels.as_deref()).expect("write csr shards")
            };
            prop_assert_eq!(manifest.nnz as usize, csr.nnz());
            prop_assert_eq!(manifest.shards.len(), bounds.len() - 1);

            let store = ShardStore::open(&dir).expect("open shard store");
            if axis == "csc" {
                verify_store(&store, &csc).expect("csc store must match source bitwise");
            } else {
                verify_store(&store, &csr).expect("csr store must match source bitwise");
            }

            // The manifest's byte accounting is the truth on disk: every
            // shard file is exactly meta.disk_bytes() long.
            for meta in &store.manifest().shards {
                let f = dir.join(format!("shard-{:05}.bin", meta.index));
                let len = std::fs::metadata(&f).expect("shard file exists").len();
                prop_assert_eq!(len, meta.disk_bytes());
            }

            // Label sidecar round-trips bitwise (and is absent when unwritten).
            match (&labels, store.read_labels()) {
                (Some(want), Ok(got)) => {
                    prop_assert_eq!(want.len(), got.len());
                    for (w, g) in want.iter().zip(&got) {
                        prop_assert_eq!(w.to_bits(), g.to_bits());
                    }
                }
                (None, Err(_)) => {}
                (want, got) => prop_assert!(false, "labels {:?} vs {:?}", want.is_some(), got.is_ok()),
            }

            // The minor-nnz sidecar agrees with a hand count over the source.
            let minor_nnz = store.minor_nnz().expect("minor nnz sidecar");
            let mut hand = vec![0u64; store.manifest().minor];
            for k in 0..major {
                let s = if axis == "csc" { csc.slice(k) } else { csr.slice(k) };
                for &i in s.indices {
                    hand[i] += 1;
                }
            }
            prop_assert_eq!(minor_nnz, hand);

            // Streaming under the tightest legal budget: two adjacent
            // shards pinned (prepare pins the current epoch and releases
            // pins two epochs back), everything else evictable.
            let decoded: Vec<u64> = (0..store.manifest().shards.len())
                .map(|i| store.read_shard(i).expect("decode shard").heap_bytes())
                .collect();
            let budget = decoded
                .windows(2)
                .map(|w| w[0] + w[1])
                .max()
                .unwrap_or(decoded[0])
                .max(decoded[0]);
            let a = StreamingMatrix::open(&dir, budget).expect("open streaming matrix");
            for k in 0..major {
                a.prepare(&[k]);
                let got = a.slice(k);
                let want = if axis == "csc" { csc.slice(k) } else { csr.slice(k) };
                prop_assert_eq!(got.indices, want.indices);
                for (g, w) in got.values.iter().zip(want.values) {
                    prop_assert_eq!(g.to_bits(), w.to_bits());
                }
            }
            let st = a.io_stats();
            let max_shard = decoded.iter().copied().max().unwrap_or(0);
            prop_assert!(
                st.resident_hwm_bytes <= budget + max_shard,
                "hwm {} over budget {} + one-shard slack {}",
                st.resident_hwm_bytes, budget, max_shard
            );
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
    }

    /// Blocked GEMM agrees with the naive reference.
    #[test]
    fn blocked_gemm_matches_naive(seed in any::<u64>(), m in 1usize..12, k in 1usize..12, n in 1usize..12) {
        let mut rng = xrng::rng_from_seed(seed);
        let a = DenseMatrix::from_vec(m, k, (0..m * k).map(|_| rng.next_gaussian()).collect());
        let b = DenseMatrix::from_vec(k, n, (0..k * n).map(|_| rng.next_gaussian()).collect());
        let c1 = a.matmul(&b);
        let c2 = a.matmul_naive(&b);
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }
}
