//! Row-major dense matrices with GEMV and cache-blocked GEMM.
//!
//! The µ×µ (and sµ×sµ) Gram matrices of Algorithms 1–4 are dense regardless
//! of the sparsity of `A` (Table I footnote: "we assume that the µ×µ Gram
//! matrix computed at each iteration [is] dense"), so the solvers need a
//! small dense-matrix type with multiplication, transpose and symmetric
//! rank-k updates.

use crate::{simd, vecops};

/// A row-major dense `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Reshape in place to `rows × cols`, zeroing every entry. Keeps the
    /// backing allocation when capacity suffices — the workspace-reuse
    /// hook ([`crate::GramWorkspace`] and the solvers' `KernelWorkspace`)
    /// that lets one output matrix serve every outer iteration without
    /// reallocating.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build from nested row slices (test/fixture convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the row-major backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the row-major backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix–vector product `y = A x`.
    pub fn gemv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "gemv: dimension mismatch");
        (0..self.rows)
            .map(|i| vecops::dot(self.row(i), x))
            .collect()
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    pub fn gemv_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "gemv_t: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            vecops::axpy(x[i], self.row(i), &mut y);
        }
        y
    }

    /// Naive triple-loop GEMM `C = A·B` (reference implementation; the
    /// blocked variant below is validated against this).
    pub fn matmul_naive(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let crow = c.row_mut(i);
                vecops::axpy(aik, brow, crow);
            }
        }
        c
    }

    /// Cache-blocked GEMM `C = A·B`.
    ///
    /// Blocks of `BLOCK × BLOCK` keep the working set in L1/L2; this is the
    /// BLAS-3 kernel whose superior flop rate over repeated BLAS-1 dot
    /// products gives the SA methods their computation speedup (paper
    /// Fig. 4e–h discussion).
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, b.cols);
        let mut c = DenseMatrix::zeros(m, n);
        for ii in (0..m).step_by(Self::BLOCK) {
            let iend = (ii + Self::BLOCK).min(m);
            for kk in (0..k).step_by(Self::BLOCK) {
                let kend = (kk + Self::BLOCK).min(k);
                for jj in (0..n).step_by(Self::BLOCK) {
                    let jend = (jj + Self::BLOCK).min(n);
                    for i in ii..iend {
                        for p in kk..kend {
                            let aip = self.get(i, p);
                            if aip == 0.0 {
                                continue;
                            }
                            let brow = &b.data[p * n + jj..p * n + jend];
                            let crow = &mut c.data[i * n + jj..i * n + jend];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += aip * bv;
                            }
                        }
                    }
                }
            }
        }
        c
    }

    /// Symmetric product `AᵀA`, computing only the upper triangle and
    /// mirroring it (the paper's footnote 3 trick: "G is symmetric so
    /// computing just the upper/lower triangular part reduces flops and
    /// message size by 2×").
    ///
    /// The triangle is produced by [`simd::gram_upper_rows`] — a
    /// register-blocked 4×8 microkernel accumulating over canonical
    /// 64-row chunks with L2-sized row panels — so every entry has one
    /// fixed association at any `SACO_SIMD` mode, panel size, or (via
    /// [`Self::gram_parallel`]) thread count.
    pub fn gram(&self) -> DenseMatrix {
        let n = self.cols;
        let mut g = DenseMatrix::zeros(n, n);
        simd::gram_upper_rows(&self.data, self.rows, n, 0, n, &mut g.data);
        // Mirror overwrites every below-diagonal slot, including the few
        // the kernel's diagonal-straddling tiles touched.
        for a in 0..n {
            for b in (a + 1)..n {
                g.data[b * n + a] = g.data[a * n + b];
            }
        }
        g
    }

    /// Multi-threaded [`matmul`](Self::matmul) over `saco-par`: output
    /// rows are split into cache-block tiles, each computed by the same
    /// blocked kernel. Rows of `C` are independent and each keeps the
    /// serial `kk`/`jj` block traversal, so the result is **bitwise
    /// identical** to the serial product at any thread count.
    pub fn matmul_parallel(&self, b: &DenseMatrix, nthreads: usize) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dimension mismatch");
        let (m, n) = (self.rows, b.cols);
        if nthreads <= 1 || m < 2 * Self::BLOCK {
            return self.matmul(b);
        }
        let tiles = saco_par::tile_ranges(m, 4 * nthreads);
        let parts = saco_par::tiled_map_weighted(
            nthreads,
            tiles.len(),
            2 * (m * self.cols * n) as u64,
            || (),
            |_, t| {
                let (lo, hi) = tiles[t];
                self.matmul_rows(b, lo, hi)
            },
        );
        let mut data = Vec::with_capacity(m * n);
        for part in parts {
            data.extend_from_slice(&part);
        }
        DenseMatrix::from_vec(m, n, data)
    }

    const BLOCK: usize = 64;

    /// Blocked GEMM restricted to output rows `[lo, hi)`; returns that
    /// row band. Per output entry the accumulation order over the inner
    /// dimension is exactly [`matmul`](Self::matmul)'s (`kk` blocks
    /// ascending, then `p` within each block), which is what makes the
    /// row-tiled parallel product bitwise identical.
    fn matmul_rows(&self, b: &DenseMatrix, lo: usize, hi: usize) -> Vec<f64> {
        let (k, n) = (self.cols, b.cols);
        let mut band = vec![0.0; (hi - lo) * n];
        for kk in (0..k).step_by(Self::BLOCK) {
            let kend = (kk + Self::BLOCK).min(k);
            for jj in (0..n).step_by(Self::BLOCK) {
                let jend = (jj + Self::BLOCK).min(n);
                for i in lo..hi {
                    for p in kk..kend {
                        let aip = self.get(i, p);
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &b.data[p * n + jj..p * n + jend];
                        let crow = &mut band[(i - lo) * n + jj..(i - lo) * n + jend];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aip * bv;
                        }
                    }
                }
            }
        }
        band
    }

    /// Multi-threaded [`gram`](Self::gram) over `saco-par`: the upper
    /// triangle's output rows are split into band tiles, each produced by
    /// the same [`simd::gram_upper_rows`] microkernel. Band splits cannot
    /// change the canonical-chunk fold behind any entry, so the result is
    /// **bitwise identical** at any thread count. Tiles are sized
    /// unevenly (row `a` of the triangle costs `n − a` updates) via many
    /// small tiles plus the pool's dynamic claiming.
    ///
    /// Small problems short-circuit to the serial kernel through
    /// `saco_par::dispatch_width` — the µ×µ Gram of a quick-mode solve is
    /// far below `MIN_DISPATCH_WORK`, and the tiled path's per-tile
    /// buffers and merge copies were what made `kernel.dense_gram.wall_t4`
    /// slower than `wall_t1` in the PR-2 gauges.
    pub fn gram_parallel(&self, nthreads: usize) -> DenseMatrix {
        let n = self.cols;
        // Triangle row a costs 2·m·(n − a) flops: n(n+1)·m over the block.
        let work = (n * (n + 1) * self.rows) as u64;
        if n < 8 || nthreads <= 1 {
            return self.gram();
        }
        if saco_par::dispatch_width(nthreads, n, work) <= 1 {
            // Sub-dispatch-size with a pool requested: serial kernel, but
            // counted as a region (like tiled_map_weighted's fallback) so
            // `par.regions` keeps tracking pooled-kernel invocations.
            return saco_par::serial_region(n, || self.gram());
        }
        // Cap the tile count so every band keeps at least TILE_MR rows:
        // thinner bands would degrade the microkernel to its scalar edge
        // path. Band boundaries never affect bits (see gram_upper_rows).
        let ntiles = (n / simd::TILE_MR).max(1).min(8 * nthreads);
        let tiles = saco_par::tile_ranges(n, ntiles);
        let parts = saco_par::tiled_map_weighted(
            nthreads,
            tiles.len(),
            work,
            || (),
            |_, t| {
                let (lo, hi) = tiles[t];
                let mut band = vec![0.0; (hi - lo) * n];
                simd::gram_upper_rows(&self.data, self.rows, n, lo, hi, &mut band);
                band
            },
        );
        let mut g = DenseMatrix::zeros(n, n);
        for (t, part) in parts.into_iter().enumerate() {
            let (lo, hi) = tiles[t];
            for a in lo..hi {
                // Keep only each band row's upper-triangle span; the
                // mirror below fills (and overwrites) the rest.
                g.data[a * n + a..(a + 1) * n]
                    .copy_from_slice(&part[(a - lo) * n + a..(a - lo + 1) * n]);
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                g.data[b * n + a] = g.data[a * n + b];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        vecops::nrm2(&self.data)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        vecops::inf_norm(&self.data)
    }

    /// `self += alpha * other` (same shape).
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        vecops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Extract the square diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Extract a contiguous square diagonal block `[lo, hi) × [lo, hi)`.
    pub fn diag_block(&self, lo: usize, hi: usize) -> DenseMatrix {
        let mut b = DenseMatrix::zeros(0, 0);
        self.diag_block_into(lo, hi, &mut b);
        b
    }

    /// [`diag_block`](Self::diag_block) into a caller-owned matrix
    /// (reshaped in place), so per-iteration Lipschitz-block extraction in
    /// the SA inner loops reuses one allocation.
    pub fn diag_block_into(&self, lo: usize, hi: usize, out: &mut DenseMatrix) {
        assert!(lo <= hi && hi <= self.rows && hi <= self.cols);
        let k = hi - lo;
        out.reshape_zeroed(k, k);
        for i in 0..k {
            for j in 0..k {
                out.set(i, j, self.get(lo + i, lo + j));
            }
        }
    }

    /// Check symmetry to tolerance `tol` (relative to the largest entry).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let scale = self.max_abs().max(1.0);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::rng_from_seed;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut rng = rng_from_seed(seed);
        let data = (0..rows * cols).map(|_| rng.next_gaussian()).collect();
        DenseMatrix::from_vec(rows, cols, data)
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_matrix(7, 7, 1);
        let i = DenseMatrix::identity(7);
        let ai = a.matmul(&i);
        assert!((0..49).all(|k| (ai.as_slice()[k] - a.as_slice()[k]).abs() < 1e-15));
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        for (m, k, n, seed) in [
            (3, 4, 5, 2),
            (65, 70, 67, 3),
            (128, 32, 130, 4),
            (1, 200, 1, 5),
        ] {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed + 100);
            let c1 = a.matmul_naive(&b);
            let c2 = a.matmul(&b);
            let diff: f64 = c1
                .as_slice()
                .iter()
                .zip(c2.as_slice())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-10, "blocked vs naive diff {diff} at {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemv_matches_matmul() {
        let a = random_matrix(9, 6, 6);
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let bx = DenseMatrix::from_vec(6, 1, x.clone());
        let via_mm = a.matmul(&bx);
        let via_gemv = a.gemv(&x);
        for i in 0..9 {
            assert!((via_mm.get(i, 0) - via_gemv[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let a = random_matrix(9, 6, 7);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let t = a.transpose();
        let y1 = a.gemv_t(&x);
        let y2 = t.gemv(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_matches_explicit_ata() {
        let a = random_matrix(20, 8, 8);
        let g1 = a.gram();
        let g2 = a.transpose().matmul(&a);
        for k in 0..64 {
            assert!((g1.as_slice()[k] - g2.as_slice()[k]).abs() < 1e-10);
        }
        assert!(g1.is_symmetric(1e-14));
    }

    #[test]
    fn transpose_involution() {
        let a = random_matrix(5, 11, 9);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn diag_block_and_diagonal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        assert_eq!(a.diagonal(), vec![1.0, 5.0, 9.0]);
        let b = a.diag_block(1, 3);
        assert_eq!(b.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn add_scaled_and_norms() {
        let mut a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.fro_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        let b = DenseMatrix::identity(2);
        a.add_scaled(2.0, &b);
        assert_eq!(a.get(0, 0), 5.0);
        assert_eq!(a.get(1, 1), 6.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_ragged_panics() {
        let _ = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]);
    }
}
