//! LIBSVM text-format I/O.
//!
//! All of the paper's experiments use datasets from the LIBSVM repository
//! (Tables II and IV), distributed in the classic text format:
//!
//! ```text
//! <label> <index>:<value> <index>:<value> ...
//! ```
//!
//! with 1-based feature indices. This reader accepts real datasets if the
//! user has them on disk; the `datagen` crate produces synthetic stand-ins
//! in the same format so the whole pipeline (parse → partition → solve) is
//! exercised either way.

use crate::{CooMatrix, CsrMatrix};
use std::io::{BufRead, Write};

/// A labeled sparse dataset: design matrix `a` (m×n) and labels `b` (m).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Design matrix, rows = data points, cols = features.
    pub a: CsrMatrix,
    /// Per-row labels (±1 for classification, real for regression).
    pub b: Vec<f64>,
}

impl Dataset {
    /// Rows (data points).
    pub fn num_points(&self) -> usize {
        self.a.rows()
    }

    /// Columns (features).
    pub fn num_features(&self) -> usize {
        self.a.cols()
    }
}

/// Parse errors with line position.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content at 1-based line `line`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, what } => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Read a LIBSVM-format dataset.
///
/// `min_features` lets callers force the feature-dimension (LIBSVM files
/// omit trailing all-zero features); the result has
/// `cols = max(min_features, 1 + max index seen)`.
pub fn read_libsvm<R: BufRead>(reader: R, min_features: usize) -> Result<Dataset, ParseError> {
    let mut labels = Vec::new();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_col = 0usize;
    let mut row = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_ascii_whitespace();
        let label_tok = parts.next().expect("non-empty line has a first token");
        let label: f64 = label_tok.parse().map_err(|_| ParseError::Malformed {
            line: lineno + 1,
            what: format!("bad label {label_tok:?}"),
        })?;
        labels.push(label);
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| ParseError::Malformed {
                line: lineno + 1,
                what: format!("expected index:value, got {tok:?}"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| ParseError::Malformed {
                line: lineno + 1,
                what: format!("bad feature index {idx_s:?}"),
            })?;
            if idx == 0 {
                return Err(ParseError::Malformed {
                    line: lineno + 1,
                    what: "LIBSVM feature indices are 1-based; got 0".into(),
                });
            }
            let val: f64 = val_s.parse().map_err(|_| ParseError::Malformed {
                line: lineno + 1,
                what: format!("bad feature value {val_s:?}"),
            })?;
            let col = idx - 1;
            max_col = max_col.max(col + 1);
            triplets.push((row, col, val));
        }
        row += 1;
    }
    let cols = max_col.max(min_features);
    let mut coo = CooMatrix::new(row, cols);
    for (r, c, v) in triplets {
        coo.push(r, c, v);
    }
    Ok(Dataset {
        a: coo.to_csr(),
        b: labels,
    })
}

/// Write a dataset in LIBSVM format (1-based indices, `%.17g`-equivalent
/// precision so a read-back roundtrips exactly).
pub fn write_libsvm<W: Write>(w: &mut W, ds: &Dataset) -> std::io::Result<()> {
    assert_eq!(ds.a.rows(), ds.b.len(), "labels/rows mismatch");
    for i in 0..ds.a.rows() {
        write!(w, "{}", ds.b[i])?;
        let r = ds.a.row(i);
        for (&j, &v) in r.indices.iter().zip(r.values) {
            write!(w, " {}:{}", j + 1, v)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic() {
        let text = "+1 1:0.5 3:2.0\n-1 2:1.5\n";
        let ds = read_libsvm(Cursor::new(text), 0).unwrap();
        assert_eq!(ds.num_points(), 2);
        assert_eq!(ds.num_features(), 3);
        assert_eq!(ds.b, vec![1.0, -1.0]);
        assert_eq!(ds.a.get(0, 0), 0.5);
        assert_eq!(ds.a.get(0, 2), 2.0);
        assert_eq!(ds.a.get(1, 1), 1.5);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n+1 1:1 # trailing\n";
        let ds = read_libsvm(Cursor::new(text), 0).unwrap();
        assert_eq!(ds.num_points(), 1);
    }

    #[test]
    fn min_features_pads_width() {
        let ds = read_libsvm(Cursor::new("1 1:1\n"), 10).unwrap();
        assert_eq!(ds.num_features(), 10);
    }

    #[test]
    fn roundtrip() {
        let text = "1 1:0.25 5:-3\n-1 2:7\n1 1:1 2:2 3:3 4:4 5:5\n";
        let ds = read_libsvm(Cursor::new(text), 0).unwrap();
        let mut buf = Vec::new();
        write_libsvm(&mut buf, &ds).unwrap();
        let ds2 = read_libsvm(Cursor::new(buf), 0).unwrap();
        assert_eq!(ds2.b, ds.b);
        assert_eq!(ds2.a, ds.a);
    }

    #[test]
    fn zero_index_rejected() {
        let err = read_libsvm(Cursor::new("1 0:5\n"), 0).unwrap_err();
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn bad_label_reports_line() {
        let err = read_libsvm(Cursor::new("1 1:1\nxyz 1:1\n"), 0).unwrap_err();
        assert!(err.to_string().starts_with("line 2"), "{err}");
    }

    #[test]
    fn bad_pair_rejected() {
        let err = read_libsvm(Cursor::new("1 notapair\n"), 0).unwrap_err();
        assert!(err.to_string().contains("index:value"));
    }

    #[test]
    fn empty_input() {
        let ds = read_libsvm(Cursor::new(""), 4).unwrap();
        assert_eq!(ds.num_points(), 0);
        assert_eq!(ds.num_features(), 4);
    }
}
