//! Kernel functions and the bounded kernel-row tile cache for the
//! kernel solver family (K-DCD / K-BDCD).
//!
//! Kernel methods never materialize the `m × m` Gram matrix `K`. The
//! solvers work from *rows* `K(i, ·)` built in two stages: a local
//! dot-product pass `⟨aᵢ, aₗ⟩` over this rank's feature block (summed
//! across ranks by the engine's fused allreduce) and a replicated entry
//! transform [`KernelFn::eval`] applied to the now-global dots. Finished
//! rows are admitted to a [`KernelCache`] so rows that recur across
//! sampled blocks skip both stages entirely — the cache is the kernel
//! analogue of the shard cache in [`crate::shard`], and borrows its
//! two-epoch pin contract.
//!
//! # Determinism
//!
//! Cache *state is a pure function of the admit sequence*: lookups
//! ([`KernelCache::row`]) never touch recency, and admission/eviction
//! happen only in [`KernelCache::begin_epoch`], which the solver calls
//! once per block in block order on every engine and in both overlap
//! modes. Hit/miss patterns — and therefore every float that travels or
//! is computed — are identical across `seq`/`sim`/`dist`/`net` and
//! across `--overlap` on/off.

use std::collections::{HashMap, VecDeque};

/// A positive-definite kernel on sparse feature vectors, evaluated from
/// the dot product `⟨aᵢ, aⱼ⟩` (and, for RBF, the squared norms `‖aᵢ‖²`,
/// `‖aⱼ‖²` — so only dot products ever cross ranks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelFn {
    /// `K(i,j) = ⟨aᵢ, aⱼ⟩` — recovers the linear solvers in dual form.
    Linear,
    /// `K(i,j) = (γ·⟨aᵢ, aⱼ⟩ + c₀)^d`.
    Polynomial {
        /// Scale γ applied to the dot product.
        gamma: f64,
        /// Additive constant c₀.
        coef0: f64,
        /// Integer degree d ≥ 1.
        degree: u32,
    },
    /// `K(i,j) = exp(−γ‖aᵢ − aⱼ‖²) = exp(−γ(‖aᵢ‖² + ‖aⱼ‖² − 2⟨aᵢ,aⱼ⟩))`.
    Rbf {
        /// Bandwidth γ > 0.
        gamma: f64,
    },
}

impl KernelFn {
    /// Parse a CLI kernel spec: `linear`, `rbf[:gamma=G]`, or
    /// `poly[:d=D][,gamma=G][,coef0=C]` (defaults: γ=1, c₀=1, d=3).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (name, params) = match spec.split_once(':') {
            Some((n, p)) => (n, p),
            None => (spec, ""),
        };
        let mut gamma = 1.0;
        let mut coef0 = 1.0;
        let mut degree = 3u32;
        for kv in params.split(',').filter(|s| !s.is_empty()) {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("kernel parameter `{kv}` is not key=value"))?;
            match k {
                "gamma" => gamma = v.parse().map_err(|e| format!("gamma: {e}"))?,
                "coef0" => coef0 = v.parse().map_err(|e| format!("coef0: {e}"))?,
                "d" | "degree" => degree = v.parse().map_err(|e| format!("degree: {e}"))?,
                _ => return Err(format!("unknown kernel parameter `{k}`")),
            }
        }
        match name {
            "linear" => Ok(KernelFn::Linear),
            "poly" | "polynomial" => {
                if degree == 0 {
                    return Err("polynomial degree must be ≥ 1".into());
                }
                Ok(KernelFn::Polynomial {
                    gamma,
                    coef0,
                    degree,
                })
            }
            "rbf" => {
                if gamma <= 0.0 || gamma.is_nan() {
                    return Err("rbf gamma must be > 0".into());
                }
                Ok(KernelFn::Rbf { gamma })
            }
            _ => Err(format!("unknown kernel `{name}` (linear|poly|rbf)")),
        }
    }

    /// Transform one global dot product into a kernel entry.
    #[inline]
    pub fn eval(&self, dot: f64, ni: f64, nj: f64) -> f64 {
        match *self {
            KernelFn::Linear => dot,
            KernelFn::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * dot + coef0).powi(degree as i32),
            KernelFn::Rbf { gamma } => (-gamma * (ni + nj - 2.0 * dot)).exp(),
        }
    }

    /// Whether [`Self::eval`] reads the squared-norm arguments — true
    /// only for RBF, which then needs one global norms pass at init
    /// ([`crate::SliceSource::major_norms_into`] + engine reduction).
    pub fn needs_norms(&self) -> bool {
        matches!(self, KernelFn::Rbf { .. })
    }

    /// Modeled flops per transformed entry (cost-model input, not a
    /// measurement): 0 for linear (the dot is already charged), `3 + d`
    /// for polynomial, and 10 for RBF with `exp` priced at 8.
    pub fn eval_flops(&self) -> u64 {
        match *self {
            KernelFn::Linear => 0,
            KernelFn::Polynomial { degree, .. } => 3 + degree as u64,
            KernelFn::Rbf { .. } => 10,
        }
    }
}

/// Lifetime counters for a [`KernelCache`] (the `kmethod.cache.*`
/// gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCacheStats {
    /// Distinct selected rows already resident at `begin_epoch`.
    pub hits: u64,
    /// Distinct selected rows that had to be built (and communicated).
    pub misses: u64,
    /// Resident rows dropped to stay within the row budget.
    pub evictions: u64,
}

enum Slot {
    /// Admitted this epoch; the transformed row arrives via `fill` after
    /// the exchange.
    Promised,
    Ready(Vec<f64>),
}

struct Entry {
    slot: Slot,
    pin_epoch: u64,
}

/// A bounded cache of transformed kernel rows `K(i, ·) ∈ ℝᵐ`, keyed by
/// row index, with FIFO-by-admission eviction and a two-epoch pin
/// contract (an epoch = one sampled block): rows selected in epoch `e`
/// stay resident through epoch `e + 1`, because with `--overlap` the
/// next block's misses are resolved while the current block's rows are
/// still feeding the inner recurrence and the rank-1 margin updates.
///
/// Admission is *promised-key*: `begin_epoch` reserves the key and
/// reports the miss; the row's floats arrive later via [`Self::fill`]
/// once the allreduce has made the dots global. Eviction counts rows,
/// not bytes — every row costs exactly `8·m` bytes — and never touches
/// a pinned row, so the budget is soft when a block pins more rows than
/// it allows (correctness over memory, exactly like the shard cache).
pub struct KernelCache {
    m: usize,
    capacity_rows: usize,
    epoch: u64,
    entries: HashMap<usize, Entry>,
    order: VecDeque<usize>,
    stats: KernelCacheStats,
}

impl KernelCache {
    /// A cache for length-`m` rows under `budget_bytes` of row storage
    /// (at least one row).
    pub fn new(m: usize, budget_bytes: usize) -> Self {
        assert!(m > 0, "kernel rows must be non-empty");
        Self {
            m,
            capacity_rows: (budget_bytes / (8 * m)).max(1),
            epoch: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: KernelCacheStats::default(),
        }
    }

    /// Open the next epoch for the block selection `sel`: pin every
    /// distinct selected row, admit the absent ones as promised keys,
    /// evict unpinned rows beyond the budget, and return the distinct
    /// missing indices in first-occurrence order — the rows the caller
    /// must build and [`Self::fill`].
    pub fn begin_epoch(&mut self, sel: &[usize]) -> Vec<usize> {
        self.epoch += 1;
        let mut misses = Vec::new();
        for &i in sel {
            match self.entries.get_mut(&i) {
                Some(e) => {
                    if e.pin_epoch < self.epoch {
                        self.stats.hits += 1;
                    }
                    e.pin_epoch = self.epoch;
                }
                None => {
                    self.stats.misses += 1;
                    self.entries.insert(
                        i,
                        Entry {
                            slot: Slot::Promised,
                            pin_epoch: self.epoch,
                        },
                    );
                    self.order.push_back(i);
                    misses.push(i);
                }
            }
        }
        let mut k = 0;
        while self.order.len() > self.capacity_rows && k < self.order.len() {
            let i = self.order[k];
            if self.entries[&i].pin_epoch + 2 > self.epoch {
                k += 1;
                continue;
            }
            self.order.remove(k);
            self.entries.remove(&i);
            self.stats.evictions += 1;
        }
        misses
    }

    /// Fulfill a promise from `begin_epoch` with the transformed row.
    pub fn fill(&mut self, i: usize, row: Vec<f64>) {
        assert_eq!(row.len(), self.m, "kernel row length");
        let e = self.entries.get_mut(&i).expect("fill of unpromised row");
        assert!(
            matches!(e.slot, Slot::Promised),
            "row {i} filled while already ready"
        );
        e.slot = Slot::Ready(row);
    }

    /// Borrow the resident row `K(i, ·)`. Read-pure: no recency update,
    /// so lookups cannot perturb the admit-sequence determinism.
    pub fn row(&self, i: usize) -> &[f64] {
        match self.entries.get(&i) {
            Some(Entry {
                slot: Slot::Ready(r),
                ..
            }) => r,
            Some(_) => panic!("row {i} is promised but not yet filled"),
            None => panic!("row {i} is not resident"),
        }
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn stats(&self) -> KernelCacheStats {
        self.stats
    }

    /// Bytes of row storage currently admitted (promised rows count at
    /// their final size — admission is the commitment).
    pub fn resident_bytes(&self) -> u64 {
        (self.order.len() * 8 * self.m) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_specs() {
        assert_eq!(KernelFn::parse("linear").unwrap(), KernelFn::Linear);
        assert_eq!(
            KernelFn::parse("rbf:gamma=0.25").unwrap(),
            KernelFn::Rbf { gamma: 0.25 }
        );
        assert_eq!(
            KernelFn::parse("poly:d=2,gamma=0.5,coef0=0.0").unwrap(),
            KernelFn::Polynomial {
                gamma: 0.5,
                coef0: 0.0,
                degree: 2
            }
        );
        assert!(KernelFn::parse("rbf:gamma=-1").is_err());
        assert!(KernelFn::parse("poly:d=0").is_err());
        assert!(KernelFn::parse("tanh").is_err());
        assert!(KernelFn::parse("rbf:gamma").is_err());
    }

    #[test]
    fn eval_matches_closed_forms() {
        let lin = KernelFn::Linear;
        assert_eq!(lin.eval(3.5, 9.0, 9.0), 3.5);
        let poly = KernelFn::parse("poly:d=2,gamma=2.0,coef0=1.0").unwrap();
        assert_eq!(poly.eval(3.0, 0.0, 0.0), 49.0);
        let rbf = KernelFn::Rbf { gamma: 0.5 };
        // ‖a−b‖² = 4 + 9 − 2·6 = 1 → exp(−0.5).
        let v = rbf.eval(6.0, 4.0, 9.0);
        assert!((v - (-0.5f64).exp()).abs() < 1e-15);
        // K(i,i) = 1 exactly for RBF.
        assert_eq!(rbf.eval(4.0, 4.0, 4.0), 1.0);
        assert!(rbf.needs_norms() && !lin.needs_norms() && !poly.needs_norms());
    }

    #[test]
    fn cache_hits_misses_and_promises() {
        let mut c = KernelCache::new(4, 8 * 4 * 16);
        assert_eq!(c.begin_epoch(&[2, 5, 2]), vec![2, 5]);
        c.fill(2, vec![0.0; 4]);
        c.fill(5, vec![1.0; 4]);
        assert_eq!(c.row(5), &[1.0; 4]);
        // Second epoch: one hit (duplicates don't double-count), one miss.
        assert_eq!(c.begin_epoch(&[5, 5, 7]), vec![7]);
        c.fill(7, vec![2.0; 4]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 0));
    }

    #[test]
    fn eviction_is_fifo_and_respects_two_epoch_pins() {
        // Budget of 2 rows of length 2.
        let mut c = KernelCache::new(2, 8 * 2 * 2);
        assert_eq!(c.begin_epoch(&[0, 1]), vec![0, 1]);
        c.fill(0, vec![0.0; 2]);
        c.fill(1, vec![0.0; 2]);
        // Epoch 2 admits a third row; 0 and 1 are pinned from epoch 1, so
        // the budget is soft — nothing can be evicted yet.
        assert_eq!(c.begin_epoch(&[3]), vec![3]);
        c.fill(3, vec![0.0; 2]);
        assert_eq!(c.resident_bytes(), 48);
        assert_eq!(c.stats().evictions, 0);
        // Epoch 3: rows 0/1 (pinned in epoch 1) are now evictable; FIFO
        // drops row 0 first, then row 1, back down to the budget.
        assert_eq!(c.begin_epoch(&[3]), Vec::<usize>::new());
        assert_eq!(c.stats().evictions, 1);
        c.row(3);
        c.row(1);
        // Epoch 4: new pressure; row 1 (pinned in epoch 1 — reads are
        // pin-neutral) is the next FIFO eviction.
        assert_eq!(c.begin_epoch(&[4]), vec![4]);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.resident_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn evicted_row_read_panics() {
        let mut c = KernelCache::new(1, 8);
        c.begin_epoch(&[0]);
        c.fill(0, vec![0.0]);
        c.begin_epoch(&[1]);
        c.fill(1, vec![0.0]);
        c.begin_epoch(&[2]);
        c.fill(2, vec![0.0]);
        c.begin_epoch(&[2]);
        c.row(0);
    }
}
