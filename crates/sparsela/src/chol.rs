//! Small dense Cholesky factorization.
//!
//! Used to (a) validate that sampled Gram matrices are numerically positive
//! semidefinite in tests, and (b) solve the small ridge-regularized
//! subproblems in the examples. Gram matrices in this codebase are at most
//! a few hundred rows, so an unblocked right-looking factorization is
//! plenty.

use crate::DenseMatrix;

/// Error returned when a matrix is not positive definite to working
/// precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot column at which the factorization broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} ≤ 0)",
            self.pivot
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: DenseMatrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// # Errors
    /// Returns [`NotPositiveDefinite`] if any pivot is ≤ 0.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: &DenseMatrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky of a non-square matrix");
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a.get(j, j);
            for k in 0..j {
                d -= l.get(j, k) * l.get(j, k);
            }
            if d <= 0.0 {
                return Err(NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l.set(j, j, dj);
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / dj);
            }
        }
        Ok(Self { l })
    }

    /// Borrow the factor `L`.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solve `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        // forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l.get(i, k) * y[k];
            }
            y[i] = s / self.l.get(i, i);
        }
        // backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l.get(k, i) * x[k];
            }
            x[i] = s / self.l.get(i, i);
        }
        x
    }

    /// log-determinant of `A` (2·Σ log Lᵢᵢ).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;
    use xrng::rng_from_seed;

    fn spd(n: usize, seed: u64) -> DenseMatrix {
        let mut rng = rng_from_seed(seed);
        let data: Vec<f64> = (0..n * (n + 3)).map(|_| rng.next_gaussian()).collect();
        let mut g = DenseMatrix::from_vec(n + 3, n, data).gram();
        for i in 0..n {
            g.set(i, i, g.get(i, i) + 0.5); // ridge to guarantee PD
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(7, 1);
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        for k in 0..49 {
            assert!((recon.as_slice()[k] - a.as_slice()[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matches_residual() {
        let a = spd(9, 2);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let x = ch.solve(&b);
        let r = vecops::sub(&a.gemv(&x), &b);
        assert!(vecops::nrm2(&r) < 1e-9, "residual {}", vecops::nrm2(&r));
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::factor(&DenseMatrix::identity(5)).unwrap();
        assert!(ch.log_det().abs() < 1e-14);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    fn semidefinite_matrix_rejected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        assert!(Cholesky::factor(&a).is_err());
    }
}
