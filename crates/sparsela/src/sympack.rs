//! Symmetric-triangle packing — the wire format of the SA reduction.
//!
//! Every outer loop of Algorithms 2/4 allreduces a symmetric `sb × sb`
//! Gram block. Its lower triangle is pure redundancy on the wire, so the
//! solvers pack only the upper triangle (including the diagonal) —
//! `sb(sb+1)/2` words instead of `sb²` — append the residual-cross terms
//! and any traced scalars, and reduce ONE contiguous buffer. This is the
//! paper's footnote 3 ("G is symmetric so computing just the upper/lower
//! triangular part reduces flops and message size by 2×") applied to the
//! message, not just the flops.
//!
//! Layout of the fused payload built by the solvers:
//!
//! ```text
//! [ upper triangle of G, row-major | cross terms | traced scalars ]
//!   sb(sb+1)/2 words                 nvecs·sb      0 or 1 words
//! ```
//!
//! [`pack_upper_into`] and [`unpack_symmetric_into`] are exact inverses
//! (a bit-for-bit roundtrip — see `tests/proptests.rs`); both are
//! allocation-free against caller-owned buffers so the SA hot loop reuses
//! one payload buffer (or two, when double-buffered for comm/comp
//! overlap) across all outer iterations.

use crate::DenseMatrix;

/// Number of words the packed upper triangle of a `k × k` symmetric
/// matrix occupies: `k(k+1)/2`.
#[inline]
pub fn packed_len(k: usize) -> usize {
    k * (k + 1) / 2
}

/// Append the upper triangle (including diagonal) of a symmetric `k × k`
/// matrix to `buf`, row-major: `G[0][0..k], G[1][1..k], …` — exactly
/// [`packed_len`]`(k)` words.
///
/// Only the upper triangle of `g` is read, so callers that fill just
/// `i ≤ j` entries may skip mirroring before packing.
pub fn pack_upper_into(g: &DenseMatrix, buf: &mut Vec<f64>) {
    let k = g.rows();
    assert_eq!(k, g.cols(), "pack_upper_into needs a square matrix");
    buf.reserve(packed_len(k));
    for i in 0..k {
        for j in i..k {
            buf.push(g.get(i, j));
        }
    }
}

/// Inverse of [`pack_upper_into`]: read [`packed_len`]`(k)` words from
/// `buf[at..]` into a full symmetric matrix (both triangles mirrored),
/// returning the offset just past the triangle so the caller can continue
/// unpacking the cross/scalar tail of a fused payload.
///
/// `out` is reshaped in place — the zero-alloc variant the solver hot
/// loops use to land the allreduced Gram block in a reusable buffer.
pub fn unpack_symmetric_into(buf: &[f64], at: usize, k: usize, out: &mut DenseMatrix) -> usize {
    out.reshape_zeroed(k, k);
    let mut pos = at;
    for i in 0..k {
        for j in i..k {
            let v = buf[pos];
            out.set(i, j, v);
            out.set(j, i, v);
            pos += 1;
        }
    }
    pos
}

/// Allocating convenience form of [`unpack_symmetric_into`].
pub fn unpack_symmetric(buf: &[f64], at: usize, k: usize) -> (DenseMatrix, usize) {
    let mut g = DenseMatrix::zeros(0, 0);
    let pos = unpack_symmetric_into(buf, at, k, &mut g);
    (g, pos)
}

/// Total word count of the fused SA payload for a `width × width` Gram
/// block, `nvecs` cross-term vectors, and an optional traced scalar:
/// `width(width+1)/2 + nvecs·width + (traced ? 1 : 0)`.
///
/// Single source of truth for the wire format shared by the solvers'
/// allreduce calls and the simulator's words accounting — the fused
/// buffer built by [`pack_upper_into`] plus the cross/scalar tail.
#[inline]
pub fn payload_words(width: usize, nvecs: usize, traced: bool) -> usize {
    packed_len(width) + nvecs * width + usize::from(traced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_prefix_and_matrix() {
        let g = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 5.0, 6.0], &[3.0, 6.0, 9.0]]);
        let mut buf = vec![99.0]; // pre-existing content preserved
        pack_upper_into(&g, &mut buf);
        assert_eq!(buf.len(), 1 + packed_len(3));
        let (g2, next) = unpack_symmetric(&buf, 1, 3);
        assert_eq!(next, 7);
        assert_eq!(g2.as_slice(), g.as_slice());
    }

    #[test]
    fn packed_size_is_half_plus_diagonal() {
        let k = 16;
        let g = DenseMatrix::identity(k);
        let mut buf = Vec::new();
        pack_upper_into(&g, &mut buf);
        assert_eq!(buf.len(), packed_len(k));
        assert!(buf.len() < k * k);
    }

    #[test]
    fn lower_triangle_is_never_read() {
        // Fill only i ≤ j; garbage below the diagonal must not leak.
        let mut g = DenseMatrix::zeros(3, 3);
        g.set(0, 0, 1.0);
        g.set(0, 1, 2.0);
        g.set(0, 2, 3.0);
        g.set(1, 1, 4.0);
        g.set(1, 2, 5.0);
        g.set(2, 2, 6.0);
        g.set(2, 0, f64::NAN); // lower-triangle garbage
        let mut buf = Vec::new();
        pack_upper_into(&g, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let (full, _) = unpack_symmetric(&buf, 0, 3);
        assert!(full.is_symmetric(0.0));
        assert_eq!(full.get(2, 0), 3.0);
    }

    #[test]
    fn payload_words_counts_triangle_cross_and_scalar() {
        // Matches what a solver actually packs: triangle + cross + scalar.
        let g = DenseMatrix::identity(4);
        let mut buf = Vec::new();
        pack_upper_into(&g, &mut buf);
        buf.resize(buf.len() + 2 * 4, 0.0); // two cross vectors
        assert_eq!(buf.len(), payload_words(4, 2, false));
        buf.push(0.0); // traced scalar
        assert_eq!(buf.len(), payload_words(4, 2, true));
        assert_eq!(payload_words(1, 1, false), 2);
        assert_eq!(payload_words(0, 0, false), 0);
    }

    #[test]
    fn zero_size_matrix_packs_to_nothing() {
        let g = DenseMatrix::zeros(0, 0);
        let mut buf = Vec::new();
        pack_upper_into(&g, &mut buf);
        assert!(buf.is_empty());
        let (g2, next) = unpack_symmetric(&buf, 0, 0);
        assert_eq!(next, 0);
        assert_eq!((g2.rows(), g2.cols()), (0, 0));
    }
}
