//! Householder QR factorization for dense tall matrices.
//!
//! Used to compute *exact* least-squares references that the iterative
//! solvers are validated against (normal-equation Cholesky loses half the
//! digits on ill-conditioned data; QR does not), and as the dense direct
//! solver of the substrate.

use crate::DenseMatrix;

/// A Householder QR factorization of an `m × n` matrix with `m ≥ n`:
/// `A = Q·R` with orthonormal `Q` (`m × n`, stored implicitly as
/// reflectors) and upper-triangular `R` (`n × n`).
#[derive(Clone, Debug)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, Householder vectors
    /// below the diagonal (with implicit leading 1).
    packed: DenseMatrix,
    /// The β scalar of each reflector `H = I − β v vᵀ`.
    betas: Vec<f64>,
}

impl Qr {
    /// Factor `a` (`m × n`, `m ≥ n`).
    ///
    /// # Panics
    /// Panics if `m < n`.
    pub fn factor(a: &DenseMatrix) -> Qr {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QR requires a tall (m ≥ n) matrix; got {m}×{n}");
        let mut r = a.clone();
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            // Build the Householder reflector for column k below row k.
            let mut norm_sq = 0.0;
            for i in k..m {
                let v = r.get(i, k);
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                betas.push(0.0);
                continue;
            }
            let akk = r.get(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            // v = x − α e₁, normalized so v[0] = 1.
            let v0 = akk - alpha;
            let beta = if v0 == 0.0 {
                0.0
            } else {
                // β = 2 / ‖v‖² with v = (v0, x[k+1..]) then rescaled by v0:
                // after dividing v by v0, β = −v0·alpha⁻¹... use the
                // standard stable form: β = −v0/α.
                -v0 / alpha
            };
            betas.push(beta);
            if beta == 0.0 {
                continue;
            }
            // store normalized v below the diagonal
            for i in (k + 1)..m {
                let val = r.get(i, k) / v0;
                r.set(i, k, val);
            }
            r.set(k, k, alpha);
            // apply H to the trailing columns
            for j in (k + 1)..n {
                // w = vᵀ · col_j (v[k] = 1 implicit)
                let mut w = r.get(k, j);
                for i in (k + 1)..m {
                    w += r.get(i, k) * r.get(i, j);
                }
                w *= beta;
                let new_kj = r.get(k, j) - w;
                r.set(k, j, new_kj);
                for i in (k + 1)..m {
                    let val = r.get(i, j) - w * r.get(i, k);
                    r.set(i, j, val);
                }
            }
        }
        Qr { packed: r, betas }
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> DenseMatrix {
        let n = self.cols();
        let mut out = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                out.set(i, j, self.packed.get(i, j));
            }
        }
        out
    }

    /// Apply `Qᵀ` to a vector of length `m`, in place.
    pub fn qt_apply(&self, y: &mut [f64]) {
        let (m, n) = (self.rows(), self.cols());
        assert_eq!(y.len(), m, "qt_apply: length mismatch");
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut w = y[k];
            for i in (k + 1)..m {
                w += self.packed.get(i, k) * y[i];
            }
            w *= beta;
            y[k] -= w;
            for i in (k + 1)..m {
                y[i] -= w * self.packed.get(i, k);
            }
        }
    }

    /// Minimum-norm-residual solve: `x = argmin ‖Ax − b‖₂`.
    ///
    /// # Panics
    /// Panics on length mismatch or if `R` is numerically singular.
    pub fn solve_least_squares(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.rows(), self.cols());
        assert_eq!(b.len(), m, "solve: rhs length mismatch");
        let mut y = b.to_vec();
        self.qt_apply(&mut y);
        // back-substitute R x = y[..n]; pivots are judged relative to the
        // largest diagonal entry (round-off leaves ~ε·‖A‖ in dead pivots).
        let max_diag = (0..n).fold(0.0f64, |m, i| m.max(self.packed.get(i, i).abs()));
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.packed.get(i, i);
            assert!(
                rii.abs() > 1e-12 * max_diag.max(1e-300),
                "R is singular at pivot {i}; the matrix is rank-deficient"
            );
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.packed.get(i, j) * x[j];
            }
            x[i] = s / rii;
        }
        x
    }

    /// Condition-number estimate from `R`'s diagonal (cheap, order of
    /// magnitude only).
    pub fn diag_condition_estimate(&self) -> f64 {
        let n = self.cols();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let d = self.packed.get(i, i).abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

/// One-shot dense least squares: `argmin ‖Ax − b‖₂` via Householder QR.
///
/// ```
/// use sparsela::DenseMatrix;
/// use sparsela::qr::least_squares;
/// // overdetermined consistent system: x = (1, 2)
/// let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let x = least_squares(&a, &[1.0, 2.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
pub fn least_squares(a: &DenseMatrix, b: &[f64]) -> Vec<f64> {
    Qr::factor(a).solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;
    use xrng::rng_from_seed;

    fn random(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut rng = rng_from_seed(seed);
        DenseMatrix::from_vec(m, n, (0..m * n).map(|_| rng.next_gaussian()).collect())
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = random(30, 8, 1);
        let mut rng = rng_from_seed(2);
        let b: Vec<f64> = (0..30).map(|_| rng.next_gaussian()).collect();
        let x = least_squares(&a, &b);
        let mut r = a.gemv(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        let atr = a.gemv_t(&r);
        assert!(
            vecops::inf_norm(&atr) < 1e-9 * vecops::nrm2(&b),
            "normal equations violated: {}",
            vecops::inf_norm(&atr)
        );
    }

    #[test]
    fn exact_solve_for_square_systems() {
        let a = random(6, 6, 3);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.0).collect();
        let b = a.gemv(&x_true);
        let x = least_squares(&a, &b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn r_is_upper_triangular_with_consistent_gram() {
        // RᵀR = AᵀA (both equal the Gram matrix).
        let a = random(20, 5, 4);
        let qr = Qr::factor(&a);
        let r = qr.r();
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0, "below-diagonal entry nonzero");
            }
        }
        let rtr = r.transpose().matmul(&r);
        let ata = a.gram();
        for k in 0..25 {
            assert!(
                (rtr.as_slice()[k] - ata.as_slice()[k]).abs() < 1e-9,
                "RᵀR ≠ AᵀA at {k}"
            );
        }
    }

    #[test]
    fn qt_preserves_norms() {
        let a = random(15, 6, 5);
        let qr = Qr::factor(&a);
        let mut rng = rng_from_seed(6);
        for _ in 0..10 {
            let y: Vec<f64> = (0..15).map(|_| rng.next_gaussian()).collect();
            let norm_before = vecops::nrm2(&y);
            let mut z = y.clone();
            qr.qt_apply(&mut z);
            assert!(
                (vecops::nrm2(&z) - norm_before).abs() < 1e-9,
                "Qᵀ not orthogonal"
            );
        }
    }

    #[test]
    fn matches_cholesky_on_well_conditioned_data() {
        let a = random(40, 6, 7);
        let mut rng = rng_from_seed(8);
        let b: Vec<f64> = (0..40).map(|_| rng.next_gaussian()).collect();
        let x_qr = least_squares(&a, &b);
        let gram = a.gram();
        let atb = a.gemv_t(&b);
        let x_ch = crate::chol::Cholesky::factor(&gram)
            .expect("Gram of random tall matrix is PD")
            .solve(&atb);
        for (u, v) in x_qr.iter().zip(&x_ch) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn condition_estimate_flags_near_singularity() {
        let good = Qr::factor(&random(10, 4, 9));
        assert!(good.diag_condition_estimate() < 1e3);
        // duplicate column => singular
        let mut bad = random(10, 3, 10);
        for i in 0..10 {
            let v = bad.get(i, 0);
            bad.set(i, 2, v);
        }
        let qr = Qr::factor(&bad);
        assert!(qr.diag_condition_estimate() > 1e12);
    }

    #[test]
    #[should_panic(expected = "requires a tall")]
    fn wide_matrix_rejected() {
        Qr::factor(&random(3, 5, 11));
    }

    #[test]
    #[should_panic(expected = "rank-deficient")]
    fn singular_solve_panics() {
        let mut a = random(8, 2, 12);
        for i in 0..8 {
            let v = a.get(i, 0);
            a.set(i, 1, v); // rank 1
        }
        let qr = Qr::factor(&a);
        let _ = qr.solve_least_squares(&[1.0; 8]);
    }
}
