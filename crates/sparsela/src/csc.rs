//! Compressed Sparse Column matrices.
//!
//! The Lasso solvers sample *columns* of the data matrix (Fig. 1 step 2 /
//! Alg. 1 line 7: `Aₕ = A·Iₕ`). Each rank of the row-partitioned machine
//! therefore keeps its local row block in CSC so that gathering µ sampled
//! columns is O(nnz of those columns) instead of a scan of the whole block.

use crate::{CooMatrix, CsrMatrix, DenseMatrix, SparseSlice};

/// A sparse matrix in CSC format: `indptr` (length `cols+1`), `indices`
/// (row ids, strictly increasing within a column), `values`.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Assemble from raw parts, validating the invariants.
    ///
    /// # Panics
    /// Panics on malformed `indptr`, mismatched lengths, or unsorted /
    /// out-of-range row indices.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), cols + 1, "indptr length must be cols+1");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap_or(&0),
            indices.len(),
            "indptr end must equal nnz"
        );
        for c in 0..cols {
            assert!(indptr[c] <= indptr[c + 1], "indptr must be monotone");
            let col = &indices[indptr[c]..indptr[c + 1]];
            for w in col.windows(2) {
                assert!(
                    w[0] < w[1],
                    "row indices must be strictly increasing in column {c}"
                );
            }
            if let Some(&last) = col.last() {
                assert!(last < rows, "row index {last} out of range in column {c}");
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Zero matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; cols + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from a dense matrix, dropping zeros.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut coo = CooMatrix::new(d.rows(), d.cols());
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                let v = d.get(i, j);
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csc()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.indptr[j + 1] - self.indptr[j]
    }

    /// Borrow column `j` as a [`SparseSlice`].
    #[inline]
    pub fn col(&self, j: usize) -> SparseSlice<'_> {
        let lo = self.indptr[j];
        let hi = self.indptr[j + 1];
        SparseSlice {
            indices: &self.indices[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Random element access; O(log col_nnz).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let c = self.col(j);
        match c.indices.binary_search(&i) {
            Ok(k) => c.values[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `y = A x` (column-wise accumulation).
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            if x[j] != 0.0 {
                self.col(j).axpy_into(x[j], &mut y);
            }
        }
        y
    }

    /// Transposed product `y = Aᵀ x` (column dots).
    pub fn spmv_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "spmv_t: dimension mismatch");
        (0..self.cols).map(|j| self.col(j).dot_dense(x)).collect()
    }

    /// Convert to CSR (counting sort by row).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.rows + 1];
        for &r in &self.indices {
            counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for j in 0..self.cols {
            let c = self.col(j);
            for (&r, &v) in c.indices.iter().zip(c.values) {
                let slot = next[r];
                indices[slot] = j;
                values[slot] = v;
                next[r] += 1;
            }
        }
        CsrMatrix::from_parts(self.rows, self.cols, indptr, indices, values)
    }

    /// Dense copy (tests and small fixtures only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            let c = self.col(j);
            for (&i, &v) in c.indices.iter().zip(c.values) {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Extract rows `[lo, hi)` with row ids renumbered to `[0, hi-lo)`
    /// (the 1D-row-partition splitter for CSC-stored local blocks).
    pub fn row_block(&self, lo: usize, hi: usize) -> CscMatrix {
        assert!(lo <= hi && hi <= self.rows, "row_block out of range");
        let mut indptr = Vec::with_capacity(self.cols + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for j in 0..self.cols {
            let c = self.col(j);
            let start = c.indices.partition_point(|&r| r < lo);
            let end = c.indices.partition_point(|&r| r < hi);
            for k in start..end {
                indices.push(c.indices[k] - lo);
                values.push(c.values[k]);
            }
            indptr.push(indices.len());
        }
        CscMatrix::from_parts(hi - lo, self.cols, indptr, indices, values)
    }

    /// Squared Euclidean norm of every column (CD Lipschitz constants).
    pub fn col_norms_sq(&self) -> Vec<f64> {
        (0..self.cols).map(|j| self.col(j).norm_sq()).collect()
    }

    /// Gather the sampled columns `sel` into a dense `rows × sel.len()`
    /// matrix (Alg. 1 line 7: `Aₕ = A·Iₕ` as an explicit dense block, used
    /// when the sampled block is dense enough for BLAS-3).
    pub fn gather_columns_dense(&self, sel: &[usize]) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, sel.len());
        for (k, &j) in sel.iter().enumerate() {
            let c = self.col(j);
            for (&i, &v) in c.indices.iter().zip(c.values) {
                d.set(i, k, v);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut coo = CooMatrix::new(3, 3);
        for &(i, j, v) in &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)] {
            coo.push(i, j, v);
        }
        coo.to_csc()
    }

    #[test]
    fn get_and_shape() {
        let a = fixture();
        assert_eq!((a.rows(), a.cols(), a.nnz()), (3, 3, 4));
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.col_nnz(0), 2);
    }

    #[test]
    fn spmv_and_spmv_t_match_dense() {
        let a = fixture();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(a.spmv(&x), a.to_dense().gemv(&x));
        assert_eq!(a.spmv_t(&x), a.to_dense().gemv_t(&x));
    }

    #[test]
    fn csr_conversion_roundtrip() {
        let a = fixture();
        assert_eq!(a.to_csr().to_csc(), a);
    }

    #[test]
    fn row_block_renumbers() {
        let a = fixture();
        let b = a.row_block(2, 3);
        assert_eq!((b.rows(), b.cols()), (1, 3));
        assert_eq!(b.get(0, 0), 3.0);
        assert_eq!(b.get(0, 1), 4.0);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn gather_columns_dense_matches() {
        let a = fixture();
        let g = a.gather_columns_dense(&[2, 0]);
        assert_eq!((g.rows(), g.cols()), (3, 2));
        assert_eq!(g.get(0, 0), 2.0);
        assert_eq!(g.get(2, 1), 3.0);
    }

    #[test]
    fn col_norms() {
        let a = fixture();
        assert_eq!(a.col_norms_sq(), vec![10.0, 16.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_rows_panic() {
        CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }
}
