//! Compressed Sparse Row matrices.
//!
//! The paper stores all datasets "using Compressed Sparse Row format
//! (3-array variant)" (§IV-B). CSR gives O(1) access to a row's nonzeros,
//! which is what the SVM solvers need: the dual coordinate descent of
//! Algorithm 3 samples *rows* `Aᵢ` of the (locally column-partitioned) data
//! matrix.

use crate::{CooMatrix, CscMatrix, DenseMatrix, SparseSlice};

/// A sparse matrix in CSR format: `indptr` (length `rows+1`), `indices`
/// (column ids, strictly increasing within a row), `values`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assemble from raw parts, validating the invariants.
    ///
    /// # Panics
    /// Panics if `indptr` is not monotone of length `rows+1`, if
    /// `indices`/`values` lengths disagree, or if column ids are out of
    /// range or unsorted within a row.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length must be rows+1");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap_or(&0),
            indices.len(),
            "indptr end must equal nnz"
        );
        for r in 0..rows {
            assert!(indptr[r] <= indptr[r + 1], "indptr must be monotone");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "column indices must be strictly increasing in row {r}"
                );
            }
            if let Some(&last) = row.last() {
                assert!(last < cols, "column index {last} out of range in row {r}");
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Zero matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from a dense matrix, dropping zeros.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut coo = CooMatrix::new(d.rows(), d.cols());
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                let v = d.get(i, j);
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored: `nnz / (rows·cols)` (the paper's `f`).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Borrow row `i` as a [`SparseSlice`].
    #[inline]
    pub fn row(&self, i: usize) -> SparseSlice<'_> {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        SparseSlice {
            indices: &self.indices[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Random (binary-searched) element access; O(log row_nnz).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let r = self.row(i);
        match r.indices.binary_search(&j) {
            Ok(k) => r.values[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// ```
    /// use sparsela::{CooMatrix};
    /// let mut coo = CooMatrix::new(2, 2);
    /// coo.push(0, 0, 2.0);
    /// coo.push(1, 1, 3.0);
    /// let a = coo.to_csr();
    /// assert_eq!(a.spmv(&[1.0, 1.0]), vec![2.0, 3.0]);
    /// ```
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv: dimension mismatch");
        (0..self.rows).map(|i| self.row(i).dot_dense(x)).collect()
    }

    /// Transposed product `y = Aᵀ x` without materialising the transpose.
    pub fn spmv_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "spmv_t: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            if x[i] != 0.0 {
                self.row(i).axpy_into(x[i], &mut y);
            }
        }
        y
    }

    /// Convert to CSC.
    pub fn to_csc(&self) -> CscMatrix {
        // Counting sort by column: O(nnz + cols).
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            let r = self.row(i);
            for (&c, &v) in r.indices.iter().zip(r.values) {
                let slot = next[c];
                indices[slot] = i;
                values[slot] = v;
                next[c] += 1;
            }
        }
        CscMatrix::from_parts(self.rows, self.cols, indptr, indices, values)
    }

    /// Dense copy (tests and small fixtures only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let r = self.row(i);
            for (&j, &v) in r.indices.iter().zip(r.values) {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Extract the submatrix of rows `[lo, hi)` (the 1D-row-partition
    /// splitter used to place a block of `A` on each rank).
    pub fn row_block(&self, lo: usize, hi: usize) -> CsrMatrix {
        assert!(lo <= hi && hi <= self.rows, "row_block out of range");
        let base = self.indptr[lo];
        let indptr: Vec<usize> = self.indptr[lo..=hi].iter().map(|p| p - base).collect();
        let indices = self.indices[self.indptr[lo]..self.indptr[hi]].to_vec();
        let values = self.values[self.indptr[lo]..self.indptr[hi]].to_vec();
        CsrMatrix::from_parts(hi - lo, self.cols, indptr, indices, values)
    }

    /// Extract the submatrix of columns `[lo, hi)` with column ids
    /// renumbered to `[0, hi-lo)` (the 1D-column-partition splitter used by
    /// the SVM solvers).
    pub fn col_block(&self, lo: usize, hi: usize) -> CsrMatrix {
        assert!(lo <= hi && hi <= self.cols, "col_block out of range");
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..self.rows {
            let r = self.row(i);
            let start = r.indices.partition_point(|&c| c < lo);
            let end = r.indices.partition_point(|&c| c < hi);
            for k in start..end {
                indices.push(r.indices[k] - lo);
                values.push(r.values[k]);
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_parts(self.rows, hi - lo, indptr, indices, values)
    }

    /// Squared Euclidean norm of every row (the SVM step sizes `ηᵢ = AᵢAᵢᵀ`).
    pub fn row_norms_sq(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).norm_sq()).collect()
    }

    /// Per-row nnz histogram support: nnz of each row (load-balance
    /// diagnostics for the partitioners).
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        (0..self.rows).map(|i| self.row_nnz(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn get_and_shape() {
        let a = fixture();
        assert_eq!((a.rows(), a.cols(), a.nnz()), (3, 3, 4));
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 1), 4.0);
        assert!((a.density() - 4.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = fixture();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(a.spmv(&x), a.to_dense().gemv(&x));
    }

    #[test]
    fn spmv_t_matches_dense() {
        let a = fixture();
        let x = vec![1.0, -1.0, 2.0];
        assert_eq!(a.spmv_t(&x), a.to_dense().gemv_t(&x));
    }

    #[test]
    fn csc_conversion_roundtrip() {
        let a = fixture();
        let c = a.to_csc();
        assert_eq!(c.to_dense().as_slice(), a.to_dense().as_slice());
        assert_eq!(c.to_csr(), a);
    }

    #[test]
    fn row_block_extraction() {
        let a = fixture();
        let b = a.row_block(1, 3);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(1, 1), 4.0);
        let empty = a.row_block(1, 1);
        assert_eq!(empty.rows(), 0);
    }

    #[test]
    fn col_block_extraction_renumbers() {
        let a = fixture();
        let b = a.col_block(1, 3);
        assert_eq!((b.rows(), b.cols()), (3, 2));
        assert_eq!(b.get(0, 1), 2.0); // original column 2 -> 1
        assert_eq!(b.get(2, 0), 4.0); // original column 1 -> 0
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn row_norms() {
        let a = fixture();
        assert_eq!(a.row_norms_sq(), vec![5.0, 0.0, 25.0]);
        assert_eq!(a.row_nnz_counts(), vec![2, 0, 2]);
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = DenseMatrix::from_rows(&[&[0.0, 1.5], &[-2.0, 0.0]]);
        let a = CsrMatrix::from_dense(&d);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_dense().as_slice(), d.as_slice());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_indices_panic() {
        CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}
