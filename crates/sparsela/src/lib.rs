//! `sparsela` — the dense/sparse linear-algebra substrate for the
//! synchronization-avoiding solvers.
//!
//! The paper's C++/MPI implementation leans on Intel MKL for Sparse and
//! Dense BLAS (§IV-B). No comparably mature sparse BLAS exists for Rust, so
//! this crate provides the kernels the solvers actually need, built from
//! scratch:
//!
//! * [`DenseMatrix`] — row-major dense storage with GEMM/GEMV/transpose,
//!   including a cache-blocked GEMM (the BLAS-3 path whose higher flop rate
//!   is the source of the SA methods' *computation* speedup, Fig. 4e–h).
//! * [`CooMatrix`] / [`CsrMatrix`] / [`CscMatrix`] — the three classic
//!   sparse formats with conversions; the paper stores data in "Compressed
//!   Sparse Row format (3-array variant)".
//! * [`vecops`] — BLAS-1 style slice kernels (dot, axpy, norms, …).
//! * [`simd`] — explicit-width microkernels behind the hot paths
//!   (runtime `SACO_SIMD=auto|scalar|wide` dispatch, register-blocked
//!   dense Gram, interleaved sparse scatter-dot) under a deterministic
//!   lane-reduction contract: every width is bitwise identical.
//! * [`gram`] — sampled Gram matrices `Aₛᵀ Aₛ` and cross products
//!   `Aₛᵀ [v w]`, the two reductions at the heart of Algorithms 1–4.
//! * [`kernel`] — kernel functions (linear/polynomial/RBF) and the
//!   bounded kernel-row cache behind the K-DCD/K-BDCD family; the
//!   `m × m` kernel matrix is never materialized.
//! * [`eig`] — Jacobi eigensolver and power iteration for the small
//!   symmetric matrices whose largest eigenvalue sets the step size.
//! * [`chol`] — small dense Cholesky (used for SPD validation and ridge
//!   subproblems).
//! * [`qr`] — Householder QR and exact dense least squares (reference
//!   optima for validating the iterative solvers).
//! * [`scale`] — sparsity-preserving column normalization.
//! * [`io`] — LIBSVM text-format reader/writer.
//! * [`svdest`] — extreme singular-value estimation (for the paper's
//!   `λ = 100·σ_min` rule).
//! * [`sympack`] — symmetric-triangle packing for the fused allreduce
//!   payload (only the upper triangle travels; see `docs/PERFORMANCE.md`).
//!
//! Everything is `f64`; determinism matters more than the last 10% of
//! throughput here, so all reductions use a fixed association within a
//! rank (cross-rank reductions are the simulator's job). The SIMD builds
//! in [`simd`] respect that: they reschedule independent accumulator
//! lanes, never reassociate a chain, so speed costs zero reproducibility.

// Index-based loops mirror the textbook formulations of the numerical
// kernels; iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod chol;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod eig;
pub mod gram;
pub mod io;
pub mod kernel;
pub mod qr;
pub mod scale;
pub mod shard;
pub mod simd;
pub mod svdest;
pub mod sympack;
pub mod vecops;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use gram::{GramWorkspace, MajorSlices, SliceSource};
pub use kernel::{KernelCache, KernelCacheStats, KernelFn};
pub use sympack::{pack_upper_into, packed_len, unpack_symmetric, unpack_symmetric_into};

/// A borrowed view of one sparse row (CSR) or column (CSC): parallel slices
/// of strictly increasing indices and their values.
///
/// Both `CsrMatrix::row` and `CscMatrix::col` return this, which lets the
/// Gram-matrix kernels in [`gram`] serve the Lasso solvers (which sample
/// *columns* of a row-partitioned matrix) and the SVM solvers (which sample
/// *rows* of a column-partitioned matrix) with the same code.
#[derive(Clone, Copy, Debug)]
pub struct SparseSlice<'a> {
    /// Strictly increasing coordinate indices.
    pub indices: &'a [usize],
    /// Values aligned with `indices`.
    pub values: &'a [f64],
}

impl SparseSlice<'_> {
    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Dot product with a dense vector.
    ///
    /// Deliberately a single scalar accumulator chain: the gathered
    /// access pattern defeats lane splitting (measured slower under both
    /// portable and AVX2 codegen), and this chain's order is the
    /// per-entry contract the interleaved sampled-Gram kernel in
    /// [`gram`] reproduces lane by lane.
    pub fn dot_dense(&self, v: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &x) in self.indices.iter().zip(self.values) {
            acc += x * v[i];
        }
        acc
    }

    /// Sparse–sparse dot product by index merge (both slices sorted).
    pub fn dot_sparse(&self, other: &SparseSlice<'_>) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Squared Euclidean norm of the slice.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// `y[indices] += alpha * values` — scatter-add into a dense vector.
    pub fn axpy_into(&self, alpha: f64, y: &mut [f64]) {
        for (&i, &x) in self.indices.iter().zip(self.values) {
            y[i] += alpha * x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_slice_dot_dense() {
        let s = SparseSlice {
            indices: &[0, 2, 5],
            values: &[1.0, -2.0, 3.0],
        };
        let v = [1.0, 9.0, 0.5, 9.0, 9.0, 2.0];
        assert_eq!(s.dot_dense(&v), 1.0 - 1.0 + 6.0);
    }

    #[test]
    fn sparse_slice_dot_sparse_merge() {
        let a = SparseSlice {
            indices: &[1, 3, 4, 7],
            values: &[1.0, 2.0, 3.0, 4.0],
        };
        let b = SparseSlice {
            indices: &[0, 3, 7, 9],
            values: &[5.0, 6.0, 7.0, 8.0],
        };
        assert_eq!(a.dot_sparse(&b), 2.0 * 6.0 + 4.0 * 7.0);
        assert_eq!(b.dot_sparse(&a), a.dot_sparse(&b));
    }

    #[test]
    fn sparse_slice_axpy() {
        let s = SparseSlice {
            indices: &[1, 2],
            values: &[10.0, 20.0],
        };
        let mut y = vec![1.0; 4];
        s.axpy_into(0.5, &mut y);
        assert_eq!(y, vec![1.0, 6.0, 11.0, 1.0]);
    }

    #[test]
    fn sparse_slice_norms() {
        let s = SparseSlice {
            indices: &[0, 9],
            values: &[3.0, 4.0],
        };
        assert_eq!(s.norm_sq(), 25.0);
        assert_eq!(s.nnz(), 2);
    }
}
