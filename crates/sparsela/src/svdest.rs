//! Singular-value estimation.
//!
//! The paper sets the Lasso penalty to `λ = 100·σ_min(A)` (§IV-A). To be
//! able to evaluate that rule, this module estimates the extreme singular
//! values of a sparse matrix:
//!
//! * when one side of `A` is small (`min(m, n) ≤ 512`) the corresponding
//!   Gram matrix (`AAᵀ` or `AᵀA`) is formed densely and solved exactly by
//!   the Jacobi eigensolver — covers leu (38 rows), duke (44), covtype
//!   (54 columns), w1a, gisette;
//! * otherwise a Lanczos tridiagonalization of the Gram operator with full
//!   reorthogonalization estimates both ends of the spectrum (the small
//!   end converges slowly without inverting, so treat it as an estimate —
//!   adequate for a λ scale).

use crate::eig::jacobi_eigenvalues;
use crate::gram::sampled_gram;
use crate::{vecops, CsrMatrix, DenseMatrix};

/// Extreme singular values `(σ_min, σ_max)` of `A`.
///
/// `σ_min` here is the smallest singular value of the *full* spectrum
/// (zero for rank-deficient matrices), clamped at 0 against round-off.
pub fn singular_value_range(a: &CsrMatrix) -> (f64, f64) {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return (0.0, 0.0);
    }
    let small = m.min(n);
    if small <= 512 {
        let eigs = if m <= n {
            // AAᵀ over rows
            let sel: Vec<usize> = (0..m).collect();
            jacobi_eigenvalues(&sampled_gram(a, &sel))
        } else {
            let csc = a.to_csc();
            let sel: Vec<usize> = (0..n).collect();
            jacobi_eigenvalues(&sampled_gram(&csc, &sel))
        };
        let max = eigs.first().copied().unwrap_or(0.0).max(0.0);
        let min = eigs.last().copied().unwrap_or(0.0).max(0.0);
        (min.sqrt(), max.sqrt())
    } else {
        let (lmin, lmax) = lanczos_extreme(a, 120);
        (lmin.max(0.0).sqrt(), lmax.max(0.0).sqrt())
    }
}

/// Smallest singular value of `A` (see [`singular_value_range`]).
pub fn min_singular_value(a: &CsrMatrix) -> f64 {
    singular_value_range(a).0
}

/// Largest singular value of `A`.
pub fn max_singular_value(a: &CsrMatrix) -> f64 {
    singular_value_range(a).1
}

/// Lanczos with full reorthogonalization on the symmetric operator
/// `x ↦ Aᵀ(Ax)` (dimension `n`), returning the extreme Ritz values after
/// at most `k` steps.
fn lanczos_extreme(a: &CsrMatrix, k: usize) -> (f64, f64) {
    let n = a.cols();
    let k = k.min(n);
    let mut alphas: Vec<f64> = Vec::with_capacity(k);
    let mut betas: Vec<f64> = Vec::with_capacity(k);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);

    // Deterministic pseudo-random start vector.
    let mut rng = xrng::rng_from_seed(0xC0FFEE);
    let mut v: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
    let nv = vecops::nrm2(&v);
    vecops::scale(1.0 / nv, &mut v);

    let mut beta_prev = 0.0f64;
    let mut v_prev: Vec<f64> = vec![0.0; n];
    for _ in 0..k {
        // w = AᵀA v
        let av = a.spmv(&v);
        let mut w = a.spmv_t(&av);
        let alpha = vecops::dot(&v, &w);
        vecops::axpy(-alpha, &v, &mut w);
        vecops::axpy(-beta_prev, &v_prev, &mut w);
        // Full reorthogonalization against all previous Lanczos vectors —
        // costs O(k·n) per step, but keeps the Ritz values honest.
        for u in &basis {
            let c = vecops::dot(u, &w);
            vecops::axpy(-c, u, &mut w);
        }
        alphas.push(alpha);
        basis.push(v.clone());
        let beta = vecops::nrm2(&w);
        if beta < 1e-12 * alpha.abs().max(1.0) {
            // invariant subspace found: the tridiagonal spectrum is exact
            break;
        }
        betas.push(beta);
        v_prev = std::mem::replace(&mut v, w);
        vecops::scale(1.0 / beta, &mut v);
        beta_prev = beta;
    }

    // Eigenvalues of the symmetric tridiagonal T (small dense Jacobi).
    let t = alphas.len();
    let mut tri = DenseMatrix::zeros(t, t);
    for i in 0..t {
        tri.set(i, i, alphas[i]);
        if i + 1 < t {
            tri.set(i, i + 1, betas[i]);
            tri.set(i + 1, i, betas[i]);
        }
    }
    let eigs = jacobi_eigenvalues(&tri);
    (
        eigs.last().copied().unwrap_or(0.0),
        eigs.first().copied().unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// A matrix with known singular values: diag(d) padded with zeros.
    fn diagonal_matrix(d: &[f64], rows: usize, cols: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for (i, &v) in d.iter().enumerate() {
            coo.push(i, i, v);
        }
        coo.to_csr()
    }

    #[test]
    fn exact_path_on_diagonal_matrix() {
        let a = diagonal_matrix(&[3.0, 1.0, 7.0, 0.5], 4, 6);
        let (smin, smax) = singular_value_range(&a);
        assert!((smax - 7.0).abs() < 1e-10);
        assert!((smin - 0.5).abs() < 1e-10);
    }

    #[test]
    fn exact_path_uses_smaller_side() {
        // tall matrix: n small, σ over AᵀA
        let a = diagonal_matrix(&[2.0, 4.0], 100, 2);
        let (smin, smax) = singular_value_range(&a);
        assert!((smin - 2.0).abs() < 1e-10);
        assert!((smax - 4.0).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_matrix_has_zero_sigma_min() {
        // wide matrix with min(m,n)=3 but rank 2
        let mut coo = CooMatrix::new(3, 5);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        // row 2 duplicates row 0
        coo.push(2, 0, 1.0);
        let a = coo.to_csr();
        let smin = min_singular_value(&a);
        assert!(smin.abs() < 1e-8, "σ_min = {smin}");
    }

    #[test]
    fn lanczos_matches_exact_on_moderate_matrix() {
        // Force the Lanczos path by constructing a 600×600 diagonal-ish
        // matrix — compare against known extremes.
        let d: Vec<f64> = (0..600).map(|i| 1.0 + i as f64 * 0.01).collect();
        let a = diagonal_matrix(&d, 600, 600);
        let (smin, smax) = singular_value_range(&a);
        assert!((smax - 6.99).abs() < 1e-3, "σ_max = {smax}");
        // the small end of a tight spectrum converges more slowly; accept
        // a few percent
        assert!((smin - 1.0).abs() < 0.05, "σ_min = {smin}");
    }

    #[test]
    fn random_matrix_sanity() {
        use xrng::rng_from_seed;
        let mut rng = rng_from_seed(9);
        let mut coo = CooMatrix::new(50, 20);
        for i in 0..50 {
            for j in 0..20 {
                coo.push(i, j, rng.next_gaussian());
            }
        }
        let a = coo.to_csr();
        let (smin, smax) = singular_value_range(&a);
        assert!(smin > 0.0, "Gaussian 50×20 is full rank a.s.");
        assert!(smax > smin);
        // Frobenius bound: σ_max ≤ ‖A‖_F ≤ √20·σ_max
        let fro = a.row_norms_sq().iter().sum::<f64>().sqrt();
        assert!(smax <= fro + 1e-9);
        assert!(fro <= (20.0f64).sqrt() * smax + 1e-9);
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::zeros(0, 5);
        assert_eq!(singular_value_range(&a), (0.0, 0.0));
    }
}
