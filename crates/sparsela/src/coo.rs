//! Coordinate-format (triplet) sparse matrix builder.
//!
//! COO is the assembly format: dataset generators and the LIBSVM reader
//! push `(row, col, value)` triplets, then convert once to CSR or CSC for
//! the compute kernels. Duplicate entries are summed on conversion (the
//! usual finite-element convention).

use crate::{CscMatrix, CsrMatrix};

/// A sparse matrix in coordinate (triplet) format.
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Append a triplet. Explicit zeros are dropped.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Borrow the triplets.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Convert to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let merged = self.merged(/*row_major=*/ true);
        let mut indptr = vec![0usize; self.rows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        let indices: Vec<usize> = merged.iter().map(|&(_, c, _)| c).collect();
        let values: Vec<f64> = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix::from_parts(self.rows, self.cols, indptr, indices, values)
    }

    /// Convert to CSC, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        let merged = self.merged(/*row_major=*/ false);
        let mut indptr = vec![0usize; self.cols + 1];
        for &(_, c, _) in &merged {
            indptr[c + 1] += 1;
        }
        for j in 0..self.cols {
            indptr[j + 1] += indptr[j];
        }
        let indices: Vec<usize> = merged.iter().map(|&(r, _, _)| r).collect();
        let values: Vec<f64> = merged.iter().map(|&(_, _, v)| v).collect();
        CscMatrix::from_parts(self.rows, self.cols, indptr, indices, values)
    }

    /// Sort triplets (row-major or column-major) and sum duplicates,
    /// dropping entries that cancel to exactly zero. The sort is *stable*
    /// so duplicates accumulate in insertion order — CSR and CSC
    /// conversions of the same builder then agree bitwise.
    fn merged(&self, row_major: bool) -> Vec<(usize, usize, f64)> {
        let mut sorted = self.entries.clone();
        if row_major {
            sorted.sort_by_key(|&(r, c, _)| (r, c));
        } else {
            sorted.sort_by_key(|&(r, c, _)| (c, r));
        }
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_to_csr_and_csc() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 2.0);
        coo.push(2, 3, 5.0);
        coo.push(1, 0, -1.0);
        coo.push(0, 1, 3.0); // duplicate -> summed to 5.0
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csr.get(0, 1), 5.0);
        assert_eq!(csc.get(0, 1), 5.0);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(2, 3), 5.0);
        assert_eq!(csr.get(2, 0), 0.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, -1.0);
        coo.push(1, 1, 2.0);
        assert_eq!(coo.to_csr().nnz(), 1);
        assert_eq!(coo.to_csc().nnz(), 1);
    }

    #[test]
    fn explicit_zero_not_stored() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        CooMatrix::new(2, 2).push(2, 0, 1.0);
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(0, 0);
        assert_eq!(coo.to_csr().nnz(), 0);
        assert_eq!(coo.to_csc().nnz(), 0);
    }
}
