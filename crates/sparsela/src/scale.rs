//! Feature scaling for sparse data.
//!
//! Coordinate descent step sizes are per-column Lipschitz constants, so
//! wildly different column norms make λ mean different things for
//! different features. The standard preprocessing is to scale columns to
//! unit norm before solving (centering is *not* offered: subtracting a
//! column mean destroys sparsity). The scaler remembers its factors so
//! solutions can be mapped back to the original feature scale.

use crate::CsrMatrix;

/// Column scaling factors, remembered for un-scaling solutions.
#[derive(Clone, Debug)]
pub struct ColumnScaler {
    /// `factor[j]` = what column `j` was multiplied by.
    pub factor: Vec<f64>,
}

/// Which norm columns are scaled to one under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleNorm {
    /// Euclidean column norm (`‖a_j‖₂ = 1` after scaling) — makes every
    /// CD step size equal to 1.
    L2,
    /// Maximum absolute entry (`max_i |a_ij| = 1`).
    MaxAbs,
}

impl ColumnScaler {
    /// Scale the columns of `a` to unit norm, returning the scaled matrix
    /// and the scaler. Structurally empty columns are left untouched
    /// (factor 1).
    pub fn fit_transform(a: &CsrMatrix, norm: ScaleNorm) -> (CsrMatrix, ColumnScaler) {
        let csc = a.to_csc();
        let n = a.cols();
        let mut factor = vec![1.0f64; n];
        for j in 0..n {
            let col = csc.col(j);
            let scale = match norm {
                ScaleNorm::L2 => col.norm_sq().sqrt(),
                ScaleNorm::MaxAbs => col.values.iter().fold(0.0f64, |m, v| m.max(v.abs())),
            };
            if scale > 0.0 {
                factor[j] = 1.0 / scale;
            }
        }
        // Rebuild the CSR with scaled values (same structure).
        let mut indptr = Vec::with_capacity(a.rows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..a.rows() {
            let r = a.row(i);
            for (&j, &v) in r.indices.iter().zip(r.values) {
                indices.push(j);
                values.push(v * factor[j]);
            }
            indptr.push(indices.len());
        }
        (
            CsrMatrix::from_parts(a.rows(), n, indptr, indices, values),
            ColumnScaler { factor },
        )
    }

    /// Map a solution fitted on the scaled matrix back to the original
    /// feature scale: if `Ã = A·D` and `Ã·x̃ ≈ b`, then `x = D·x̃`.
    pub fn unscale_solution(&self, x_scaled: &[f64]) -> Vec<f64> {
        assert_eq!(
            x_scaled.len(),
            self.factor.len(),
            "solution length mismatch"
        );
        x_scaled
            .iter()
            .zip(&self.factor)
            .map(|(x, f)| x * f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use xrng::rng_from_seed;

    fn random_csr(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut rng = rng_from_seed(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.next_bool(0.4) {
                    coo.push(i, j, 10.0 * rng.next_gaussian());
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn l2_scaling_gives_unit_column_norms() {
        let a = random_csr(50, 20, 1);
        let (scaled, _) = ColumnScaler::fit_transform(&a, ScaleNorm::L2);
        let csc = scaled.to_csc();
        for j in 0..20 {
            let norm = csc.col(j).norm_sq().sqrt();
            if csc.col_nnz(j) > 0 {
                assert!((norm - 1.0).abs() < 1e-12, "column {j} norm {norm}");
            }
        }
        // structure unchanged
        assert_eq!(scaled.nnz(), a.nnz());
    }

    #[test]
    fn maxabs_scaling_bounds_entries() {
        let a = random_csr(50, 20, 2);
        let (scaled, _) = ColumnScaler::fit_transform(&a, ScaleNorm::MaxAbs);
        let csc = scaled.to_csc();
        for j in 0..20 {
            let col = csc.col(j);
            let mx = col.values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if col.nnz() > 0 {
                assert!((mx - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unscale_recovers_original_predictions() {
        // Ã·x̃ must equal A·unscale(x̃) exactly.
        let a = random_csr(40, 15, 3);
        let (scaled, scaler) = ColumnScaler::fit_transform(&a, ScaleNorm::L2);
        let mut rng = rng_from_seed(4);
        let x_scaled: Vec<f64> = (0..15).map(|_| rng.next_gaussian()).collect();
        let pred_scaled = scaled.spmv(&x_scaled);
        let x = scaler.unscale_solution(&x_scaled);
        let pred = a.spmv(&x);
        for (p, q) in pred_scaled.iter().zip(&pred) {
            assert!((p - q).abs() < 1e-10, "{p} vs {q}");
        }
    }

    #[test]
    fn empty_columns_get_unit_factor() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 5.0);
        // columns 1, 2 empty
        let a = coo.to_csr();
        let (_, scaler) = ColumnScaler::fit_transform(&a, ScaleNorm::L2);
        assert_eq!(scaler.factor[1], 1.0);
        assert_eq!(scaler.factor[2], 1.0);
        assert!((scaler.factor[0] - 0.2).abs() < 1e-15);
    }
}
