//! Symmetric eigensolvers for the small Gram matrices.
//!
//! Algorithm 1 line 10 needs "the largest eigenvalue of G", the µ×µ sampled
//! Gram matrix, as the optimal block Lipschitz constant (step size
//! `η = 1/(q·θ·λmax)`); Algorithm 2 line 14 needs the same for each µ×µ
//! diagonal block of the sµ×sµ Gram matrix. µ is small (1–8 in the paper's
//! experiments), so a cyclic Jacobi sweep is exact, robust, and cheap; a
//! shifted power iteration is provided for larger symmetric matrices.

use crate::{vecops, DenseMatrix};

/// All eigenvalues of a symmetric matrix by the cyclic Jacobi method,
/// returned in descending order.
///
/// # Panics
/// Panics if the matrix is not square or not symmetric to 1e-10 relative
/// tolerance.
pub fn jacobi_eigenvalues(a: &DenseMatrix) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols(), "eigenvalues of a non-square matrix");
    assert!(
        a.is_symmetric(1e-10),
        "jacobi_eigenvalues requires a symmetric matrix"
    );
    let n = a.rows();
    if n == 0 {
        return Vec::new();
    }
    let mut m = a.clone();
    // Cyclic Jacobi: annihilate each off-diagonal entry with a Givens
    // rotation; quadratic convergence, ~6 sweeps suffice in f64 for the
    // sizes we see.
    for _sweep in 0..50 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(m.get(p, q).abs());
            }
        }
        let scale = m.max_abs().max(1e-300);
        if off <= 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // stable tangent of the rotation angle
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // apply rotation J(p,q,θ)ᵀ M J(p,q,θ)
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
            }
        }
    }
    let mut eigs = m.diagonal();
    eigs.sort_by(|a, b| b.partial_cmp(a).unwrap());
    eigs
}

/// Largest eigenvalue of a symmetric positive-semidefinite matrix.
///
/// For order ≤ 2 uses closed forms; for order ≤ 32 (every Gram block the
/// solvers build) uses Jacobi; beyond that a power iteration with a
/// deterministic start vector and Rayleigh-quotient convergence test.
pub fn max_eigenvalue(a: &DenseMatrix) -> f64 {
    assert_eq!(a.rows(), a.cols(), "max_eigenvalue of a non-square matrix");
    let n = a.rows();
    match n {
        0 => 0.0,
        1 => a.get(0, 0),
        2 => {
            let (p, q, r) = (a.get(0, 0), a.get(0, 1), a.get(1, 1));
            let mean = 0.5 * (p + r);
            let disc = (0.25 * (p - r) * (p - r) + q * q).sqrt();
            mean + disc
        }
        _ if n <= 32 => jacobi_eigenvalues(a)[0],
        _ => power_iteration(a, 10_000, 1e-12),
    }
}

/// Power iteration for the dominant eigenvalue of a symmetric PSD matrix.
/// Deterministic start vector (all ones plus a small index-dependent tilt to
/// avoid orthogonality to the dominant eigenvector).
pub fn power_iteration(a: &DenseMatrix, max_iter: usize, tol: f64) -> f64 {
    let n = a.rows();
    assert_eq!(n, a.cols());
    if n == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-3).collect();
    let norm = vecops::nrm2(&v);
    vecops::scale(1.0 / norm, &mut v);
    let mut lambda = 0.0f64;
    for _ in 0..max_iter {
        let mut w = a.gemv(&v);
        let new_lambda = vecops::dot(&v, &w);
        let wn = vecops::nrm2(&w);
        if wn == 0.0 {
            return 0.0; // v in null space and A PSD with Av = 0
        }
        vecops::scale(1.0 / wn, &mut w);
        let done = (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0);
        lambda = new_lambda;
        v = w;
        if done {
            break;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::rng_from_seed;

    fn random_gram(n: usize, m: usize, seed: u64) -> DenseMatrix {
        let mut rng = rng_from_seed(seed);
        let data: Vec<f64> = (0..m * n).map(|_| rng.next_gaussian()).collect();
        DenseMatrix::from_vec(m, n, data).gram()
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut d = DenseMatrix::zeros(4, 4);
        for (i, &v) in [3.0, -1.0, 7.0, 2.0].iter().enumerate() {
            d.set(i, i, v);
        }
        let eigs = jacobi_eigenvalues(&d);
        assert_eq!(eigs, vec![7.0, 3.0, 2.0, -1.0]);
        assert_eq!(max_eigenvalue(&d), 7.0);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eigs = jacobi_eigenvalues(&a);
        assert!((eigs[0] - 3.0).abs() < 1e-12);
        assert!((eigs[1] - 1.0).abs() < 1e-12);
        assert!((max_eigenvalue(&a) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_and_frobenius_invariants() {
        let g = random_gram(8, 20, 1);
        let eigs = jacobi_eigenvalues(&g);
        let trace: f64 = (0..8).map(|i| g.get(i, i)).sum();
        let eig_sum: f64 = eigs.iter().sum();
        assert!((trace - eig_sum).abs() < 1e-8 * trace.abs().max(1.0));
        let fro2: f64 = g.fro_norm().powi(2);
        let eig_sq: f64 = eigs.iter().map(|e| e * e).sum();
        assert!((fro2 - eig_sq).abs() < 1e-7 * fro2.max(1.0));
    }

    #[test]
    fn gram_eigenvalues_nonnegative() {
        let g = random_gram(6, 9, 2);
        for e in jacobi_eigenvalues(&g) {
            assert!(e >= -1e-9, "PSD Gram eigenvalue negative: {e}");
        }
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        let g = random_gram(12, 30, 3);
        let pj = jacobi_eigenvalues(&g)[0];
        let pp = power_iteration(&g, 20_000, 1e-14);
        assert!((pj - pp).abs() < 1e-6 * pj, "jacobi {pj} vs power {pp}");
    }

    #[test]
    fn max_eigenvalue_large_path_uses_power() {
        let g = random_gram(40, 80, 4);
        let m = max_eigenvalue(&g);
        let j = jacobi_eigenvalues(&g)[0];
        assert!((m - j).abs() < 1e-5 * j, "power-path {m} vs jacobi {j}");
    }

    #[test]
    fn rank_one_gram() {
        // aaᵀ-style Gram from a 1-row matrix: λmax = ‖a‖², rest 0.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 2.0]]);
        let g = a.gram();
        let eigs = jacobi_eigenvalues(&g);
        assert!((eigs[0] - 9.0).abs() < 1e-12);
        assert!(eigs[1].abs() < 1e-12 && eigs[2].abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        assert!(jacobi_eigenvalues(&DenseMatrix::zeros(0, 0)).is_empty());
        let one = DenseMatrix::from_rows(&[&[5.0]]);
        assert_eq!(max_eigenvalue(&one), 5.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_panics() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        jacobi_eigenvalues(&a);
    }
}
