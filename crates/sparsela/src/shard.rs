//! Out-of-core sharded sparse matrices: a chunked on-disk CSR/CSC format
//! plus a bounded-memory streaming view that serves the sampled-Gram
//! kernels.
//!
//! The SA solvers only ever touch `s·µ` sampled major slices per outer
//! block (the observation that makes Algorithms 2/4 communication-avoiding
//! also makes them *out-of-core-friendly*), so a dataset far larger than
//! RAM can be solved from disk as long as the sampled shards are resident
//! when the kernels run. This module provides:
//!
//! * the **shard directory format** (`saco-shard/v1`): one binary file per
//!   contiguous major-axis chunk with a small versioned header, `u64`
//!   little-endian structure arrays and **lossless `f64` bit-pattern
//!   payloads** (values travel as `to_bits` words, so a write→read
//!   round-trip is bitwise exact);
//! * [`ShardWriter`] / [`ShardStore`] — a streaming writer (slices appended
//!   one at a time, so datasets can be *generated* out-of-core too) and a
//!   pread-windowed reader that never maps more than the requested shard;
//! * [`StreamingMatrix`] — a [`MajorSlices`]/[`SliceSource`] implementation
//!   over a `ShardStore` with an epoch-pinned shard cache under a hard
//!   resident-byte budget, backed by a `saco-par` background worker that
//!   prefetches the *next* block's shards behind the current block's
//!   compute.
//!
//! # Determinism
//!
//! Decoded shards hand out exactly the index/value bytes that were written,
//! and the kernels in [`gram`](crate::gram) are generic over
//! [`MajorSlices`] — so a streamed run computes with *the same bits* as an
//! in-memory run on the same matrix: same sample → same kernel → same
//! result, regardless of cache hits, prefetch races, or the memory budget.
//! I/O timing changes; output bits never do.
//!
//! # The two-epoch pin contract
//!
//! [`SliceSource::prepare`] opens an *epoch*: the shards backing the
//! selection are faulted in (or claimed from a prefetch) and pinned.
//! Borrowed [`SparseSlice`]s stay valid until the **second** `prepare`
//! call after the one that pinned them — two live epochs, because the
//! overlap path computes the *next* block's Gram (epoch `e+1`) while the
//! current block's slices (epoch `e`) are still in use. Eviction only ever
//! touches unpinned shards; the budget must therefore hold two epochs'
//! working sets (see `docs/PERFORMANCE.md`, "Out-of-core streaming").

use crate::gram::{MajorSlices, SliceSource};
use crate::{CscMatrix, CsrMatrix, SparseSlice};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Format magic for a shard payload file.
const SHARD_MAGIC: &[u8; 8] = b"SACOSHD1";
/// Format magic for the labels sidecar.
const LABEL_MAGIC: &[u8; 8] = b"SACOLBL1";
/// Format magic for the minor-axis nnz histogram sidecar.
const MINOR_MAGIC: &[u8; 8] = b"SACOMNZ1";
/// First line of `manifest.txt`.
const MANIFEST_VERSION: &str = "saco-shard/v1";
/// Fixed byte length of a shard file header (magic + six `u64` fields).
const HEADER_LEN: u64 = 8 + 6 * 8;

/// Which axis the shards chunk: the *major* axis is the sliced one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardAxis {
    /// Column-major chunks of a CSC matrix (Lasso: slices are columns).
    Csc,
    /// Row-major chunks of a CSR matrix (SVM: slices are rows).
    Csr,
}

impl ShardAxis {
    fn tag(self) -> u64 {
        match self {
            ShardAxis::Csc => 0,
            ShardAxis::Csr => 1,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ShardAxis::Csc => "csc",
            ShardAxis::Csr => "csr",
        }
    }

    fn parse(s: &str) -> io::Result<ShardAxis> {
        match s {
            "csc" => Ok(ShardAxis::Csc),
            "csr" => Ok(ShardAxis::Csr),
            other => Err(bad(format!("unknown shard axis {other:?}"))),
        }
    }
}

/// One shard's placement: major slices `lo..hi` with `nnz` stored entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard index (file `shard-<index:05>.bin`).
    pub index: usize,
    /// First major slice (inclusive).
    pub lo: usize,
    /// One past the last major slice.
    pub hi: usize,
    /// Stored entries in this shard.
    pub nnz: u64,
}

impl ShardMeta {
    /// Exact on-disk byte size of this shard's file.
    pub fn disk_bytes(&self) -> u64 {
        HEADER_LEN + (self.hi - self.lo + 1) as u64 * 8 + self.nnz * 16
    }
}

/// Parsed `manifest.txt`: the directory's full description.
#[derive(Clone, Debug)]
pub struct ShardManifest {
    /// Sliced axis.
    pub axis: ShardAxis,
    /// Global major-axis length (number of slices across all shards).
    pub major: usize,
    /// Global minor-axis (dense) length.
    pub minor: usize,
    /// Total stored entries.
    pub nnz: u64,
    /// Per-shard placement, in major order (contiguous, covering
    /// `0..major`).
    pub shards: Vec<ShardMeta>,
    /// Whether `labels.bin` exists.
    pub has_labels: bool,
}

impl ShardManifest {
    /// Total on-disk bytes of all shard payload files (excluding sidecars).
    pub fn disk_bytes(&self) -> u64 {
        self.shards.iter().map(ShardMeta::disk_bytes).sum()
    }

    /// Max/min shard-nnz ratio — the planner balance figure exported as
    /// the `shard.plan.imbalance` gauge (1.0 = perfectly balanced;
    /// `inf` when some shard is empty).
    pub fn nnz_imbalance(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.nnz).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.nnz).min().unwrap_or(0);
        max as f64 / min as f64
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn shard_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:05}.bin"))
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming shard-directory writer: slices are appended one at a time in
/// major order and flushed to disk whenever a planned shard boundary is
/// reached, so the full matrix never has to be resident (the 1:1-scale
/// generators feed this column by column).
///
/// `bounds` are the planned cut points (`bounds[k]..bounds[k+1]` is shard
/// `k`), normally from `datagen`'s nnz-aware planner. [`ShardWriter::finish`]
/// writes the sidecars and manifest; dropping without `finish` leaves an
/// unreadable directory (no manifest).
#[derive(Debug)]
pub struct ShardWriter {
    dir: PathBuf,
    axis: ShardAxis,
    major: usize,
    minor: usize,
    bounds: Vec<usize>,
    next_major: usize,
    cur_shard: usize,
    indptr: Vec<u64>,
    indices: Vec<u64>,
    value_bits: Vec<u64>,
    minor_nnz: Vec<u64>,
    total_nnz: u64,
    metas: Vec<ShardMeta>,
    has_labels: bool,
}

impl ShardWriter {
    /// Start a shard directory at `dir` (created if absent) for a
    /// `major`-slice matrix with dense length `minor`, cut at `bounds`.
    ///
    /// `bounds` must start at 0, end at `major`, and be strictly
    /// increasing (every shard holds at least one slice).
    pub fn create(
        dir: &Path,
        axis: ShardAxis,
        major: usize,
        minor: usize,
        bounds: &[usize],
    ) -> io::Result<ShardWriter> {
        if bounds.first() != Some(&0) || bounds.last() != Some(&major) {
            return Err(bad(format!(
                "shard bounds must cover 0..{major}, got {:?}..{:?}",
                bounds.first(),
                bounds.last()
            )));
        }
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad("shard bounds must be strictly increasing"));
        }
        std::fs::create_dir_all(dir)?;
        Ok(ShardWriter {
            dir: dir.to_path_buf(),
            axis,
            major,
            minor,
            bounds: bounds.to_vec(),
            next_major: 0,
            cur_shard: 0,
            indptr: vec![0],
            indices: Vec::new(),
            value_bits: Vec::new(),
            minor_nnz: vec![0; minor],
            total_nnz: 0,
            metas: Vec::new(),
            has_labels: false,
        })
    }

    /// Append the next major slice (`indices` strictly increasing,
    /// `< minor`). Flushes the current shard file when its planned
    /// boundary is reached.
    pub fn append_slice(&mut self, indices: &[usize], values: &[f64]) -> io::Result<()> {
        if self.next_major >= self.major {
            return Err(bad(format!("more than {} slices appended", self.major)));
        }
        if indices.len() != values.len() {
            return Err(bad("indices/values length mismatch"));
        }
        let mut prev = None;
        for &i in indices {
            if i >= self.minor {
                return Err(bad(format!(
                    "index {i} out of range (minor axis {})",
                    self.minor
                )));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(bad("slice indices must be strictly increasing"));
            }
            prev = Some(i);
            self.minor_nnz[i] += 1;
        }
        self.indices.extend(indices.iter().map(|&i| i as u64));
        self.value_bits.extend(values.iter().map(|v| v.to_bits()));
        self.total_nnz += indices.len() as u64;
        self.indptr.push(self.indices.len() as u64);
        self.next_major += 1;
        if self.next_major == self.bounds[self.cur_shard + 1] {
            self.flush_shard()?;
        }
        Ok(())
    }

    /// Write the per-point label sidecar (`labels.bin`). Call once, any
    /// time before [`ShardWriter::finish`].
    pub fn write_labels(&mut self, labels: &[f64]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(16 + labels.len() * 8);
        buf.extend_from_slice(LABEL_MAGIC);
        push_u64(&mut buf, labels.len() as u64);
        for v in labels {
            push_u64(&mut buf, v.to_bits());
        }
        std::fs::write(self.dir.join("labels.bin"), buf)?;
        self.has_labels = true;
        Ok(())
    }

    fn flush_shard(&mut self) -> io::Result<()> {
        let lo = self.bounds[self.cur_shard];
        let hi = self.bounds[self.cur_shard + 1];
        let nnz = self.indices.len() as u64;
        let mut buf =
            Vec::with_capacity(HEADER_LEN as usize + self.indptr.len() * 8 + nnz as usize * 16);
        buf.extend_from_slice(SHARD_MAGIC);
        for v in [
            self.axis.tag(),
            self.major as u64,
            self.minor as u64,
            lo as u64,
            hi as u64,
            nnz,
        ] {
            push_u64(&mut buf, v);
        }
        for &p in &self.indptr {
            push_u64(&mut buf, p);
        }
        for &i in &self.indices {
            push_u64(&mut buf, i);
        }
        for &v in &self.value_bits {
            push_u64(&mut buf, v);
        }
        std::fs::write(shard_path(&self.dir, self.cur_shard), buf)?;
        self.metas.push(ShardMeta {
            index: self.cur_shard,
            lo,
            hi,
            nnz,
        });
        self.cur_shard += 1;
        self.indptr.clear();
        self.indptr.push(0);
        self.indices.clear();
        self.value_bits.clear();
        Ok(())
    }

    /// Flush sidecars and the manifest; returns the final manifest.
    /// Errors if fewer slices were appended than planned.
    pub fn finish(self) -> io::Result<ShardManifest> {
        if self.next_major != self.major {
            return Err(bad(format!(
                "only {} of {} slices appended",
                self.next_major, self.major
            )));
        }
        let mut buf = Vec::with_capacity(16 + self.minor_nnz.len() * 8);
        buf.extend_from_slice(MINOR_MAGIC);
        push_u64(&mut buf, self.minor_nnz.len() as u64);
        for &c in &self.minor_nnz {
            push_u64(&mut buf, c);
        }
        std::fs::write(self.dir.join("minor_nnz.bin"), buf)?;

        let mut m = String::new();
        m.push_str(MANIFEST_VERSION);
        m.push('\n');
        m.push_str(&format!("axis {}\n", self.axis.name()));
        m.push_str(&format!("major {}\n", self.major));
        m.push_str(&format!("minor {}\n", self.minor));
        m.push_str(&format!("nnz {}\n", self.total_nnz));
        m.push_str(&format!("labels {}\n", u8::from(self.has_labels)));
        for s in &self.metas {
            m.push_str(&format!("shard {} {} {} {}\n", s.index, s.lo, s.hi, s.nnz));
        }
        std::fs::write(self.dir.join("manifest.txt"), m)?;
        Ok(ShardManifest {
            axis: self.axis,
            major: self.major,
            minor: self.minor,
            nnz: self.total_nnz,
            shards: self.metas,
            has_labels: self.has_labels,
        })
    }
}

/// Shard any [`MajorSlices`] matrix into `dir` at the planned `bounds`,
/// optionally with labels. `axis` must describe what the slices are
/// (columns for [`CscMatrix`], rows for [`CsrMatrix`]); prefer
/// [`write_csc`] / [`write_csr`] which pin that correspondence.
pub fn write_slices<M: MajorSlices>(
    dir: &Path,
    axis: ShardAxis,
    m: &M,
    bounds: &[usize],
    labels: Option<&[f64]>,
) -> io::Result<ShardManifest> {
    let mut w = ShardWriter::create(dir, axis, m.major_len(), m.minor_len(), bounds)?;
    for k in 0..m.major_len() {
        let s = m.slice(k);
        w.append_slice(s.indices, s.values)?;
    }
    if let Some(b) = labels {
        w.write_labels(b)?;
    }
    w.finish()
}

/// Shard a CSC matrix (column chunks — the Lasso layout).
pub fn write_csc(
    dir: &Path,
    a: &CscMatrix,
    bounds: &[usize],
    labels: Option<&[f64]>,
) -> io::Result<ShardManifest> {
    write_slices(dir, ShardAxis::Csc, a, bounds, labels)
}

/// Shard a CSR matrix (row chunks — the SVM layout).
pub fn write_csr(
    dir: &Path,
    a: &CsrMatrix,
    bounds: &[usize],
    labels: Option<&[f64]>,
) -> io::Result<ShardManifest> {
    write_slices(dir, ShardAxis::Csr, a, bounds, labels)
}

// ---------------------------------------------------------------------------
// Store (reader)
// ---------------------------------------------------------------------------

/// A fully decoded shard: the exact sub-CSR/CSC arrays that were written,
/// addressable by *global* major index.
#[derive(Clone, Debug)]
pub struct DecodedShard {
    /// First global major slice held.
    pub lo: usize,
    /// One past the last global major slice held.
    pub hi: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl DecodedShard {
    /// Borrow global slice `k` (`lo <= k < hi`).
    pub fn slice(&self, k: usize) -> SparseSlice<'_> {
        let l = k - self.lo;
        let (s, e) = (self.indptr[l], self.indptr[l + 1]);
        SparseSlice {
            indices: &self.indices[s..e],
            values: &self.values[s..e],
        }
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Approximate decoded heap footprint — what the cache budget charges.
    pub fn heap_bytes(&self) -> u64 {
        (self.indptr.len() * 8 + self.indices.len() * 16) as u64
    }
}

/// Read-side handle on a shard directory: parses the manifest once, then
/// serves pread-windowed shard decodes on demand. Cheap to clone behind an
/// [`Arc`]; holds no file descriptors between reads.
#[derive(Clone, Debug)]
pub struct ShardStore {
    dir: PathBuf,
    manifest: ShardManifest,
}

impl ShardStore {
    /// Open `dir`, parsing and validating `manifest.txt`.
    pub fn open(dir: &Path) -> io::Result<ShardStore> {
        let text = std::fs::read_to_string(dir.join("manifest.txt"))?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_VERSION) {
            return Err(bad(format!(
                "{}: not a {MANIFEST_VERSION} directory",
                dir.display()
            )));
        }
        let mut axis = None;
        let mut major = None;
        let mut minor = None;
        let mut nnz = None;
        let mut has_labels = false;
        let mut shards: Vec<ShardMeta> = Vec::new();
        for line in lines {
            let mut it = line.split_ascii_whitespace();
            let key = match it.next() {
                Some(k) => k,
                None => continue,
            };
            let mut next_usize = || -> io::Result<usize> {
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(format!("manifest: bad line {line:?}")))
            };
            match key {
                "axis" => {
                    axis = Some(ShardAxis::parse(
                        line.split_ascii_whitespace().nth(1).unwrap_or(""),
                    )?)
                }
                "major" => major = Some(next_usize()?),
                "minor" => minor = Some(next_usize()?),
                "nnz" => nnz = Some(next_usize()? as u64),
                "labels" => has_labels = next_usize()? != 0,
                "shard" => {
                    let (index, lo, hi) = (next_usize()?, next_usize()?, next_usize()?);
                    let nnz = next_usize()? as u64;
                    shards.push(ShardMeta { index, lo, hi, nnz });
                }
                other => return Err(bad(format!("manifest: unknown key {other:?}"))),
            }
        }
        let (axis, major, minor, nnz) = match (axis, major, minor, nnz) {
            (Some(a), Some(mj), Some(mn), Some(z)) => (a, mj, mn, z),
            _ => return Err(bad("manifest: missing axis/major/minor/nnz")),
        };
        // Shards must tile 0..major contiguously in order.
        let mut at = 0;
        for (i, s) in shards.iter().enumerate() {
            if s.index != i || s.lo != at || s.hi <= s.lo {
                return Err(bad(format!("manifest: shard {i} out of order")));
            }
            at = s.hi;
        }
        if at != major || shards.iter().map(|s| s.nnz).sum::<u64>() != nnz {
            return Err(bad("manifest: shards do not tile the matrix"));
        }
        Ok(ShardStore {
            dir: dir.to_path_buf(),
            manifest: ShardManifest {
                axis,
                major,
                minor,
                nnz,
                shards,
                has_labels,
            },
        })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the shard holding major slice `k`.
    pub fn shard_of(&self, k: usize) -> usize {
        debug_assert!(k < self.manifest.major);
        self.manifest.shards.partition_point(|s| s.hi <= k)
    }

    /// Decode shard `index` in full, validating header and invariants.
    pub fn read_shard(&self, index: usize) -> io::Result<DecodedShard> {
        let meta = self.manifest.shards[index];
        let f = File::open(shard_path(&self.dir, index))?;
        let mut head = [0u8; HEADER_LEN as usize];
        f.read_exact_at(&mut head, 0)?;
        if &head[..8] != SHARD_MAGIC {
            return Err(bad(format!("shard {index}: bad magic")));
        }
        let fields = decode_u64s(&head[8..]);
        let expect = [
            self.manifest.axis.tag(),
            self.manifest.major as u64,
            self.manifest.minor as u64,
            meta.lo as u64,
            meta.hi as u64,
            meta.nnz,
        ];
        if fields != expect {
            return Err(bad(format!(
                "shard {index}: header {fields:?} disagrees with manifest {expect:?}"
            )));
        }
        let nslices = meta.hi - meta.lo;
        let nnz = meta.nnz as usize;
        // One pread for the whole payload: pread-windowed access means the
        // window is this shard — never the rest of the dataset.
        let mut payload = vec![0u8; (nslices + 1) * 8 + nnz * 16];
        f.read_exact_at(&mut payload, HEADER_LEN)?;
        let indptr_end = (nslices + 1) * 8;
        let indices_end = indptr_end + nnz * 8;
        let indptr: Vec<usize> = decode_u64s(&payload[..indptr_end])
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let indices: Vec<usize> = decode_u64s(&payload[indptr_end..indices_end])
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let values: Vec<f64> = decode_u64s(&payload[indices_end..])
            .into_iter()
            .map(f64::from_bits)
            .collect();
        if indptr.first() != Some(&0) || indptr.last() != Some(&nnz) {
            return Err(bad(format!("shard {index}: indptr endpoints corrupt")));
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(bad(format!("shard {index}: indptr not monotone")));
            }
            let sl = &indices[w[0]..w[1]];
            for p in sl.windows(2) {
                if p[0] >= p[1] {
                    return Err(bad(format!(
                        "shard {index}: slice indices not strictly increasing"
                    )));
                }
            }
            if sl.last().is_some_and(|&i| i >= self.manifest.minor) {
                return Err(bad(format!("shard {index}: index out of minor range")));
            }
        }
        Ok(DecodedShard {
            lo: meta.lo,
            hi: meta.hi,
            indptr,
            indices,
            values,
        })
    }

    /// Decode shard `index` restricted to minor window `wlo..whi`, with
    /// indices rebased by `-wlo` — exactly the arithmetic of
    /// [`CscMatrix::row_block`]/[`CsrMatrix::col_block`], so a windowed
    /// rank view computes with the same bits as an in-memory block split.
    pub fn read_shard_window(
        &self,
        index: usize,
        wlo: usize,
        whi: usize,
    ) -> io::Result<DecodedShard> {
        let full = self.read_shard(index)?;
        let mut indptr = Vec::with_capacity(full.indptr.len());
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for w in full.indptr.windows(2) {
            let sl = &full.indices[w[0]..w[1]];
            let a = w[0] + sl.partition_point(|&i| i < wlo);
            let b = w[0] + sl.partition_point(|&i| i < whi);
            indices.extend(full.indices[a..b].iter().map(|&i| i - wlo));
            values.extend_from_slice(&full.values[a..b]);
            indptr.push(indices.len());
        }
        Ok(DecodedShard {
            lo: full.lo,
            hi: full.hi,
            indptr,
            indices,
            values,
        })
    }

    /// Per-major-slice nnz, read from the shard *indptr sections only*
    /// (one small pread per shard — no index/value bytes touched). This is
    /// what planners and cost models need without a data scan.
    pub fn major_nnz(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::with_capacity(self.manifest.major);
        for meta in &self.manifest.shards {
            let f = File::open(shard_path(&self.dir, meta.index))?;
            let mut buf = vec![0u8; (meta.hi - meta.lo + 1) * 8];
            f.read_exact_at(&mut buf, HEADER_LEN)?;
            let indptr = decode_u64s(&buf);
            out.extend(indptr.windows(2).map(|w| w[1] - w[0]));
        }
        Ok(out)
    }

    /// The minor-axis nnz histogram sidecar: entry `i` counts stored
    /// entries with minor index `i`. Lets rank planners and the
    /// simulator's `gap_nnz` tables be computed without scanning data.
    pub fn minor_nnz(&self) -> io::Result<Vec<u64>> {
        let bytes = std::fs::read(self.dir.join("minor_nnz.bin"))?;
        if bytes.len() < 16 || &bytes[..8] != MINOR_MAGIC {
            return Err(bad("minor_nnz.bin: bad magic"));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        if bytes.len() != 16 + len * 8 || len != self.manifest.minor {
            return Err(bad("minor_nnz.bin: length mismatch"));
        }
        Ok(decode_u64s(&bytes[16..]))
    }

    /// Read the label sidecar (bitwise-exact `f64`s).
    pub fn read_labels(&self) -> io::Result<Vec<f64>> {
        let mut f = File::open(self.dir.join("labels.bin"))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        if bytes.len() < 16 || &bytes[..8] != LABEL_MAGIC {
            return Err(bad("labels.bin: bad magic"));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        if bytes.len() != 16 + len * 8 {
            return Err(bad("labels.bin: length mismatch"));
        }
        Ok(decode_u64s(&bytes[16..])
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    fn assemble(&self) -> io::Result<(Vec<usize>, Vec<usize>, Vec<f64>)> {
        let mut indptr = Vec::with_capacity(self.manifest.major + 1);
        let mut indices = Vec::with_capacity(self.manifest.nnz as usize);
        let mut values = Vec::with_capacity(self.manifest.nnz as usize);
        indptr.push(0);
        for meta in &self.manifest.shards {
            let d = self.read_shard(meta.index)?;
            for w in d.indptr.windows(2) {
                indices.extend_from_slice(&d.indices[w[0]..w[1]]);
                values.extend_from_slice(&d.values[w[0]..w[1]]);
                indptr.push(indices.len());
            }
        }
        Ok((indptr, indices, values))
    }

    /// Reassemble the full matrix in memory as CSC (axis must be
    /// [`ShardAxis::Csc`]) — for verification and small datasets only.
    pub fn assemble_csc(&self) -> io::Result<CscMatrix> {
        if self.manifest.axis != ShardAxis::Csc {
            return Err(bad("store axis is csr, not csc"));
        }
        let (indptr, indices, values) = self.assemble()?;
        Ok(CscMatrix::from_parts(
            self.manifest.minor,
            self.manifest.major,
            indptr,
            indices,
            values,
        ))
    }

    /// Reassemble the full matrix in memory as CSR (axis must be
    /// [`ShardAxis::Csr`]).
    pub fn assemble_csr(&self) -> io::Result<CsrMatrix> {
        if self.manifest.axis != ShardAxis::Csr {
            return Err(bad("store axis is csc, not csr"));
        }
        let (indptr, indices, values) = self.assemble()?;
        Ok(CsrMatrix::from_parts(
            self.manifest.major,
            self.manifest.minor,
            indptr,
            indices,
            values,
        ))
    }
}

/// Compare a store against an in-memory matrix slice by slice, **bitwise**
/// (`--verify` for `saco shard`): every index must match exactly and every
/// value must match by `to_bits`. Streams one shard at a time, so the
/// comparison itself is out-of-core.
pub fn verify_store<M: MajorSlices>(store: &ShardStore, m: &M) -> io::Result<()> {
    if store.manifest.major != m.major_len() || store.manifest.minor != m.minor_len() {
        return Err(bad(format!(
            "shape mismatch: store {}x{}, matrix {}x{}",
            store.manifest.major,
            store.manifest.minor,
            m.major_len(),
            m.minor_len()
        )));
    }
    for meta in &store.manifest.shards {
        let d = store.read_shard(meta.index)?;
        for k in meta.lo..meta.hi {
            let (a, b) = (d.slice(k), m.slice(k));
            let same = a.indices == b.indices
                && a.values.len() == b.values.len()
                && a.values
                    .iter()
                    .zip(b.values)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
            if !same {
                return Err(bad(format!("slice {k} differs from in-memory matrix")));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Streaming matrix
// ---------------------------------------------------------------------------

/// Snapshot of a [`StreamingMatrix`]'s I/O counters — the source of the
/// `io.*` / `shard.*` telemetry gauges (see `docs/OBSERVABILITY.md`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoStats {
    /// Total payload bytes read from disk (foreground + background).
    pub bytes_read: u64,
    /// Total seconds spent reading + decoding shards, on any thread.
    pub read_secs: f64,
    /// Seconds the *main* thread was blocked on I/O: synchronous fault-ins
    /// plus waits on still-in-flight prefetches.
    pub stall_secs: f64,
    /// Background read seconds the main thread did **not** wait for —
    /// I/O genuinely hidden behind compute. `> 0` proves the prefetch
    /// overlap works.
    pub hidden_secs: f64,
    /// Shards needed by a `prepare` that were already resident.
    pub prefetch_hits: u64,
    /// Shards needed by a `prepare` (or faulted by `slice`) that were
    /// neither resident nor in flight — synchronous loads.
    pub prefetch_misses: u64,
    /// Shards needed by a `prepare` whose prefetch was still in flight
    /// (partially hidden — the main thread waited out the remainder).
    pub prefetch_waits: u64,
    /// Unpinned shards dropped to stay under the resident budget.
    pub evictions: u64,
    /// Shard decode operations (any thread, including transient scans).
    pub shard_reads: u64,
    /// Decoded bytes currently resident in the cache.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub resident_hwm_bytes: u64,
}

#[derive(Default)]
struct StatCells {
    bytes_read: AtomicU64,
    fg_read_nanos: AtomicU64,
    bg_read_nanos: AtomicU64,
    wait_nanos: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_misses: AtomicU64,
    prefetch_waits: AtomicU64,
    evictions: AtomicU64,
    shard_reads: AtomicU64,
    resident_hwm: AtomicU64,
}

impl StatCells {
    fn add_nanos(cell: &AtomicU64, d: std::time::Duration) {
        cell.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

enum Slot {
    Loading,
    Ready(Arc<DecodedShard>),
    Failed(String),
}

struct Entry {
    slot: Slot,
    /// Epoch this shard is pinned for (0 = unpinned, evictable).
    pin_epoch: u64,
    last_use: u64,
}

struct CacheState {
    entries: HashMap<usize, Entry>,
    epoch: u64,
    tick: u64,
    resident: u64,
}

struct CacheShared {
    state: Mutex<CacheState>,
    loaded: Condvar,
    stats: StatCells,
}

impl CacheShared {
    /// Insert a finished load; evict unpinned LRU shards over `budget`.
    fn finish_load(&self, sid: usize, result: io::Result<DecodedShard>, budget: u64) {
        let mut st = self.state.lock().expect("shard cache poisoned");
        let entry = st.entries.get_mut(&sid).expect("loading entry present");
        match result {
            Ok(d) => {
                let bytes = d.heap_bytes();
                entry.slot = Slot::Ready(Arc::new(d));
                st.resident += bytes;
                let hwm = &self.stats.resident_hwm;
                hwm.fetch_max(st.resident, Ordering::Relaxed);
                evict_over_budget(&mut st, &self.stats, budget);
            }
            Err(e) => entry.slot = Slot::Failed(e.to_string()),
        }
        self.loaded.notify_all();
    }
}

/// Drop unpinned shards, least-recently-used first, until the cache is
/// under `budget`. Pinned shards are never touched — if the pinned set
/// alone exceeds the budget, the caller (`prepare`) panics with sizing
/// advice rather than silently unpinning live data.
fn evict_over_budget(st: &mut CacheState, stats: &StatCells, budget: u64) {
    while st.resident > budget {
        let victim = st
            .entries
            .iter()
            .filter(|(_, e)| e.pin_epoch == 0 && matches!(e.slot, Slot::Ready(_)))
            .min_by_key(|(_, e)| e.last_use)
            .map(|(&sid, _)| sid);
        match victim {
            Some(sid) => {
                if let Some(Entry {
                    slot: Slot::Ready(d),
                    ..
                }) = st.entries.remove(&sid)
                {
                    st.resident -= d.heap_bytes();
                    stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => break, // everything resident is pinned or in flight
        }
    }
}

/// A bounded-memory matrix view over a [`ShardStore`], implementing
/// [`MajorSlices`] + [`SliceSource`] so every Gram/cross kernel and all
/// four engines run from disk with **bitwise-identical** results to the
/// in-memory path.
///
/// Shards are cached decoded under a hard `budget` (bytes); a `saco-par`
/// [`BackgroundWorker`](saco_par::BackgroundWorker) loads prefetched
/// shards behind the solver's compute. See the module docs for the
/// two-epoch pin contract that makes `slice`'s borrows sound.
///
/// A *windowed* view (`open_window`) restricts the minor axis to
/// `wlo..whi` with indices rebased — the per-rank view for the dist/net
/// engines. Each view owns an independent cache and loader.
pub struct StreamingMatrix {
    store: Arc<ShardStore>,
    shared: Arc<CacheShared>,
    loader: saco_par::BackgroundWorker,
    window: (usize, usize),
    budget: u64,
}

impl std::fmt::Debug for StreamingMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingMatrix")
            .field("dir", &self.store.dir())
            .field("window", &self.window)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl StreamingMatrix {
    /// Open a full-minor-axis view with a resident budget of
    /// `budget_bytes` of decoded shard data.
    pub fn open(dir: &Path, budget_bytes: u64) -> io::Result<StreamingMatrix> {
        let store = ShardStore::open(dir)?;
        let minor = store.manifest().minor;
        Ok(Self::from_store(store, budget_bytes, (0, minor)))
    }

    /// Open a minor-axis window `wlo..whi` (a dist/net rank's share) with
    /// its own budget, cache, and loader.
    pub fn open_window(
        dir: &Path,
        budget_bytes: u64,
        wlo: usize,
        whi: usize,
    ) -> io::Result<StreamingMatrix> {
        let store = ShardStore::open(dir)?;
        assert!(
            wlo <= whi && whi <= store.manifest().minor,
            "window out of range"
        );
        Ok(Self::from_store(store, budget_bytes, (wlo, whi)))
    }

    /// Wrap an already-open store.
    pub fn from_store(store: ShardStore, budget_bytes: u64, window: (usize, usize)) -> Self {
        StreamingMatrix {
            store: Arc::new(store),
            shared: Arc::new(CacheShared {
                state: Mutex::new(CacheState {
                    entries: HashMap::new(),
                    epoch: 0,
                    tick: 0,
                    resident: 0,
                }),
                loaded: Condvar::new(),
                stats: StatCells::default(),
            }),
            loader: saco_par::BackgroundWorker::spawn("saco-shard-loader"),
            window,
            budget: budget_bytes,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// The configured resident budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Snapshot the I/O counters.
    pub fn io_stats(&self) -> IoStats {
        let s = &self.shared.stats;
        let fg = s.fg_read_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
        let bg = s.bg_read_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
        let wait = s.wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
        let resident = self
            .shared
            .state
            .lock()
            .expect("shard cache poisoned")
            .resident;
        IoStats {
            bytes_read: s.bytes_read.load(Ordering::Relaxed),
            read_secs: fg + bg,
            stall_secs: fg + wait,
            hidden_secs: (bg - wait).max(0.0),
            prefetch_hits: s.prefetch_hits.load(Ordering::Relaxed),
            prefetch_misses: s.prefetch_misses.load(Ordering::Relaxed),
            prefetch_waits: s.prefetch_waits.load(Ordering::Relaxed),
            evictions: s.evictions.load(Ordering::Relaxed),
            shard_reads: s.shard_reads.load(Ordering::Relaxed),
            resident_bytes: resident,
            resident_hwm_bytes: s.resident_hwm.load(Ordering::Relaxed),
        }
    }

    fn decode(store: &ShardStore, window: (usize, usize), sid: usize) -> io::Result<DecodedShard> {
        if window == (0, store.manifest().minor) {
            store.read_shard(sid)
        } else {
            store.read_shard_window(sid, window.0, window.1)
        }
    }

    /// Timed decode, charging `nanos_cell` (fg or bg) and the byte/read
    /// counters.
    fn timed_decode(
        &self,
        sid: usize,
        nanos_cell: fn(&StatCells) -> &AtomicU64,
    ) -> io::Result<DecodedShard> {
        let stats = &self.shared.stats;
        let t0 = Instant::now();
        let d = Self::decode(&self.store, self.window, sid);
        StatCells::add_nanos(nanos_cell(stats), t0.elapsed());
        stats.bytes_read.fetch_add(
            self.store.manifest().shards[sid].disk_bytes(),
            Ordering::Relaxed,
        );
        stats.shard_reads.fetch_add(1, Ordering::Relaxed);
        d
    }

    fn shard_ids(&self, sel: &[usize]) -> Vec<usize> {
        let mut sids: Vec<usize> = sel.iter().map(|&k| self.store.shard_of(k)).collect();
        sids.sort_unstable();
        sids.dedup();
        sids
    }

    /// Synchronously fault `sid` in (entry already marked `Loading` and
    /// pinned by the caller under the lock).
    fn sync_load(&self, sid: usize) {
        let result = self.timed_decode(sid, |s| &s.fg_read_nanos);
        self.shared.finish_load(sid, result, self.budget);
    }

    /// Block until `sid` is `Ready`, charging wait time as stall.
    fn wait_ready(&self, sid: usize) -> Arc<DecodedShard> {
        let mut st = self.shared.state.lock().expect("shard cache poisoned");
        loop {
            match &st.entries.get(&sid).expect("waited shard has entry").slot {
                Slot::Ready(d) => return Arc::clone(d),
                Slot::Failed(e) => panic!("shard {sid} load failed: {e}"),
                Slot::Loading => {
                    let t0 = Instant::now();
                    st = self.shared.loaded.wait(st).expect("shard cache poisoned");
                    StatCells::add_nanos(&self.shared.stats.wait_nanos, t0.elapsed());
                }
            }
        }
    }
}

impl MajorSlices for StreamingMatrix {
    fn major_len(&self) -> usize {
        self.store.manifest().major
    }

    fn minor_len(&self) -> usize {
        self.window.1 - self.window.0
    }

    /// Borrow global slice `k` from the resident cache, faulting its shard
    /// in synchronously (and pinning it for the current epoch) on a miss.
    ///
    /// The returned borrow is tied to `&self` but actually points into a
    /// pinned [`DecodedShard`]; see the module docs for the two-epoch
    /// contract under which that is sound.
    fn slice(&self, k: usize) -> SparseSlice<'_> {
        enum Action {
            Have(Arc<DecodedShard>),
            Wait,
            Fault,
        }
        let sid = self.store.shard_of(k);
        let arc = loop {
            let action = {
                let mut st = self.shared.state.lock().expect("shard cache poisoned");
                st.tick += 1;
                let tick = st.tick;
                let epoch = st.epoch;
                match st.entries.get_mut(&sid) {
                    Some(e) => {
                        e.last_use = tick;
                        match &e.slot {
                            Slot::Ready(d) => Action::Have(Arc::clone(d)),
                            Slot::Failed(msg) => panic!("shard {sid} load failed: {msg}"),
                            Slot::Loading => Action::Wait,
                        }
                    }
                    None => {
                        // Unplanned fault (e.g. a full scan outside
                        // prepare/prefetch): load now, pinned to the
                        // current epoch so the borrow below stays sound.
                        self.shared
                            .stats
                            .prefetch_misses
                            .fetch_add(1, Ordering::Relaxed);
                        st.entries.insert(
                            sid,
                            Entry {
                                slot: Slot::Loading,
                                pin_epoch: epoch.max(1),
                                last_use: tick,
                            },
                        );
                        Action::Fault
                    }
                }
            };
            match action {
                Action::Have(d) => break d,
                Action::Wait => break self.wait_ready(sid),
                Action::Fault => self.sync_load(sid),
            }
        };
        let sl = arc.slice(k);
        // SAFETY: `arc`'s DecodedShard is held by the cache entry for
        // `sid`, which is pinned (by `prepare`/`prefetch`, or just above
        // on the miss path) for at least the current epoch. Eviction
        // skips pinned entries, and pins are only released by the second
        // `prepare` call after the pinning one — by which point the
        // solver contract (module docs) says no borrow from this epoch is
        // still alive. The Vec storage inside a Ready shard is never
        // mutated, so the pointers are stable for that whole window.
        unsafe {
            SparseSlice {
                indices: std::slice::from_raw_parts(sl.indices.as_ptr(), sl.indices.len()),
                values: std::slice::from_raw_parts(sl.values.as_ptr(), sl.values.len()),
            }
        }
    }
}

impl SliceSource for StreamingMatrix {
    /// Open the next epoch: fault in / claim every shard backing `sel`,
    /// pin them, release pins two epochs old, evict over-budget unpinned
    /// shards, and enforce the hard budget on the pinned set.
    fn prepare(&self, sel: &[usize]) {
        let sids = self.shard_ids(sel);
        let mut need_sync: Vec<usize> = Vec::new();
        let mut in_flight: Vec<usize> = Vec::new();
        let cur = {
            let mut st = self.shared.state.lock().expect("shard cache poisoned");
            st.epoch += 1;
            let cur = st.epoch;
            for &sid in &sids {
                st.tick += 1;
                let tick = st.tick;
                match st.entries.get_mut(&sid) {
                    Some(e) => {
                        e.pin_epoch = e.pin_epoch.max(cur);
                        e.last_use = tick;
                        match e.slot {
                            Slot::Ready(_) => {
                                self.shared
                                    .stats
                                    .prefetch_hits
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Slot::Loading => {
                                self.shared
                                    .stats
                                    .prefetch_waits
                                    .fetch_add(1, Ordering::Relaxed);
                                in_flight.push(sid);
                            }
                            Slot::Failed(ref msg) => panic!("shard {sid} load failed: {msg}"),
                        }
                    }
                    None => {
                        self.shared
                            .stats
                            .prefetch_misses
                            .fetch_add(1, Ordering::Relaxed);
                        st.entries.insert(
                            sid,
                            Entry {
                                slot: Slot::Loading,
                                pin_epoch: cur,
                                last_use: tick,
                            },
                        );
                        need_sync.push(sid);
                    }
                }
            }
            cur
        };
        for sid in need_sync {
            self.sync_load(sid);
        }
        for sid in in_flight {
            let _ = self.wait_ready(sid);
        }
        let mut st = self.shared.state.lock().expect("shard cache poisoned");
        // Release pins two epochs old; the previous epoch's slices may
        // still be borrowed (overlap mode computes the next Gram while
        // the current block is live), so only `cur` and `cur - 1` stay.
        let mut pinned_bytes = 0u64;
        for e in st.entries.values_mut() {
            if e.pin_epoch != 0 && e.pin_epoch + 2 <= cur {
                e.pin_epoch = 0;
            }
            if e.pin_epoch != 0 {
                if let Slot::Ready(d) = &e.slot {
                    pinned_bytes += d.heap_bytes();
                }
            }
        }
        evict_over_budget(&mut st, &self.shared.stats, self.budget);
        assert!(
            pinned_bytes <= self.budget,
            "pinned shard set ({pinned_bytes} B across two epochs) exceeds the \
             resident budget ({} B); raise --mem-budget or re-shard with more, \
             smaller shards (shards touched per block ≈ s·µ)",
            self.budget
        );
    }

    /// Queue background loads for the shards backing the *next* block's
    /// selection, pinned one epoch ahead so they survive until their
    /// `prepare` claims them. Returns immediately; the `saco-par`
    /// background worker does the reads behind compute.
    fn prefetch(&self, sel: &[usize]) {
        let sids = self.shard_ids(sel);
        let mut to_load: Vec<usize> = Vec::new();
        {
            let mut st = self.shared.state.lock().expect("shard cache poisoned");
            let target = st.epoch + 1;
            for &sid in &sids {
                st.tick += 1;
                let tick = st.tick;
                match st.entries.get_mut(&sid) {
                    Some(e) => {
                        e.pin_epoch = e.pin_epoch.max(target);
                        e.last_use = tick;
                    }
                    None => {
                        st.entries.insert(
                            sid,
                            Entry {
                                slot: Slot::Loading,
                                pin_epoch: target,
                                last_use: tick,
                            },
                        );
                        to_load.push(sid);
                    }
                }
            }
        }
        for sid in to_load {
            let store = Arc::clone(&self.store);
            let shared = Arc::clone(&self.shared);
            let window = self.window;
            let budget = self.budget;
            self.loader.submit(move || {
                let t0 = Instant::now();
                let result = Self::decode(&store, window, sid);
                StatCells::add_nanos(&shared.stats.bg_read_nanos, t0.elapsed());
                shared
                    .stats
                    .bytes_read
                    .fetch_add(store.manifest().shards[sid].disk_bytes(), Ordering::Relaxed);
                shared.stats.shard_reads.fetch_add(1, Ordering::Relaxed);
                shared.finish_load(sid, result, budget);
            });
        }
    }

    fn lookahead(&self) -> bool {
        true
    }

    /// `y[k] = ⟨slice(k), x⟩` by one bounded sequential pass over the
    /// shards, decoding each transiently (never cached, never pinned) —
    /// the out-of-core replacement for a full-matrix `spmv`, bitwise
    /// identical to it because the per-slice arithmetic is the same
    /// `dot_dense` chain.
    fn major_spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.minor_len(), "spmv input length");
        assert_eq!(y.len(), self.major_len(), "spmv output length");
        let stats = &self.shared.stats;
        for meta in &self.store.manifest().shards {
            let t0 = Instant::now();
            let d = Self::decode(&self.store, self.window, meta.index)
                .unwrap_or_else(|e| panic!("shard {} read failed: {e}", meta.index));
            StatCells::add_nanos(&stats.fg_read_nanos, t0.elapsed());
            stats
                .bytes_read
                .fetch_add(meta.disk_bytes(), Ordering::Relaxed);
            stats.shard_reads.fetch_add(1, Ordering::Relaxed);
            for k in meta.lo..meta.hi {
                y[k] = d.slice(k).dot_dense(x);
            }
        }
    }

    /// Row norms from one bounded sequential shard scan (same transient
    /// decode discipline as [`SliceSource::major_spmv_into`]).
    fn major_norms_into(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.major_len(), "norms output length");
        let stats = &self.shared.stats;
        for meta in &self.store.manifest().shards {
            let t0 = Instant::now();
            let d = Self::decode(&self.store, self.window, meta.index)
                .unwrap_or_else(|e| panic!("shard {} read failed: {e}", meta.index));
            StatCells::add_nanos(&stats.fg_read_nanos, t0.elapsed());
            stats
                .bytes_read
                .fetch_add(meta.disk_bytes(), Ordering::Relaxed);
            stats.shard_reads.fetch_add(1, Ordering::Relaxed);
            for k in meta.lo..meta.hi {
                y[k] = d.slice(k).norm_sq();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use xrng::rng_from_seed;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("saco_shard_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn random_csc(rows: usize, cols: usize, density: f64, seed: u64) -> CscMatrix {
        let mut rng = rng_from_seed(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.next_bool(density) {
                    coo.push(i, j, rng.next_gaussian());
                }
            }
        }
        coo.to_csc()
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let dir = tmp_dir("roundtrip");
        let a = random_csc(37, 23, 0.2, 1);
        let b: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let bounds = [0usize, 5, 6, 17, 23];
        let man = write_csc(&dir, &a, &bounds, Some(&b)).unwrap();
        assert_eq!(man.shards.len(), 4);
        assert_eq!(man.nnz, a.nnz() as u64);

        let store = ShardStore::open(&dir).unwrap();
        assert_eq!(store.manifest().axis, ShardAxis::Csc);
        verify_store(&store, &a).unwrap();
        let back = store.assemble_csc().unwrap();
        for j in 0..23 {
            let (x, y) = (a.col(j), back.col(j));
            assert_eq!(x.indices, y.indices);
            let same = x
                .values
                .iter()
                .zip(y.values)
                .all(|(p, q)| p.to_bits() == q.to_bits());
            assert!(same, "col {j} values differ");
        }
        assert_eq!(
            store
                .read_labels()
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecars_match_a_scan() {
        let dir = tmp_dir("sidecars");
        let a = random_csc(31, 17, 0.3, 2);
        let bounds = [0usize, 4, 17];
        write_csc(&dir, &a, &bounds, None).unwrap();
        let store = ShardStore::open(&dir).unwrap();
        let major: Vec<u64> = (0..17).map(|j| a.col(j).nnz() as u64).collect();
        assert_eq!(store.major_nnz().unwrap(), major);
        let mut minor = vec![0u64; 31];
        for j in 0..17 {
            for &i in a.col(j).indices {
                minor[i] += 1;
            }
        }
        assert_eq!(store.minor_nnz().unwrap(), minor);
        assert!(!store.manifest().has_labels);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn windowed_decode_matches_row_block() {
        let dir = tmp_dir("window");
        let a = random_csc(40, 12, 0.25, 3);
        write_csc(&dir, &a, &[0, 7, 12], None).unwrap();
        let store = ShardStore::open(&dir).unwrap();
        let blk = a.row_block(10, 30);
        for (sid, meta) in store.manifest().shards.clone().iter().enumerate() {
            let d = store.read_shard_window(sid, 10, 30).unwrap();
            for k in meta.lo..meta.hi {
                let (x, y) = (d.slice(k), blk.col(k));
                assert_eq!(x.indices, y.indices, "col {k}");
                assert!(x
                    .values
                    .iter()
                    .zip(y.values)
                    .all(|(p, q)| p.to_bits() == q.to_bits()));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_matrix_slices_match_and_stats_track() {
        let dir = tmp_dir("stream");
        let a = random_csc(50, 30, 0.2, 4);
        write_csc(&dir, &a, &[0, 8, 16, 24, 30], None).unwrap();
        let sm = StreamingMatrix::open(&dir, u64::MAX).unwrap();
        assert_eq!(sm.major_len(), 30);
        assert_eq!(sm.minor_len(), 50);

        let sel = vec![2usize, 9, 9, 25];
        sm.prepare(&sel);
        for &k in &sel {
            let (x, y) = (sm.slice(k), a.col(k));
            assert_eq!(x.indices, y.indices);
            assert!(x
                .values
                .iter()
                .zip(y.values)
                .all(|(p, q)| p.to_bits() == q.to_bits()));
        }
        let s = sm.io_stats();
        assert_eq!(s.prefetch_misses, 3); // shards 0, 1, 3
        assert_eq!(s.shard_reads, 3);
        assert!(s.resident_bytes > 0 && s.resident_hwm_bytes >= s.resident_bytes);

        // Prefetch then prepare: the shard is claimed as a hit (or a wait
        // if the background load is still in flight) — never a miss.
        sm.prefetch(&[17, 18]);
        sm.prepare(&[17, 18]);
        let s = sm.io_stats();
        assert_eq!(s.prefetch_misses, 3, "prefetched shard must not miss");
        assert_eq!(s.prefetch_hits + s.prefetch_waits, 1);
        assert_eq!(s.shard_reads, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gram_from_stream_is_bitwise_identical() {
        let dir = tmp_dir("gram");
        let a = random_csc(60, 40, 0.25, 5);
        write_csc(&dir, &a, &[0, 10, 20, 30, 40], None).unwrap();
        let sm = StreamingMatrix::open(&dir, u64::MAX).unwrap();
        let sel = vec![1usize, 13, 13, 22, 39, 7];
        sm.prepare(&sel);
        let g_mem = crate::gram::sampled_gram(&a, &sel);
        let g_str = crate::gram::sampled_gram(&sm, &sel);
        assert_eq!(g_mem.as_slice(), g_str.as_slice());
        let v: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).cos()).collect();
        let c_mem = crate::gram::sampled_cross(&a, &sel, &[&v]);
        let c_str = crate::gram::sampled_cross(&sm, &sel, &[&v]);
        assert_eq!(c_mem.as_slice(), c_str.as_slice());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_respects_pins_and_budget() {
        let dir = tmp_dir("evict");
        let a = random_csc(40, 32, 0.4, 6);
        let bounds: Vec<usize> = (0..=8).map(|k| k * 4).collect();
        write_csc(&dir, &a, &bounds, None).unwrap();
        let store = ShardStore::open(&dir).unwrap();
        let sizes: Vec<u64> = (0..8)
            .map(|i| store.read_shard(i).unwrap().heap_bytes())
            .collect();
        // Budget: any two consecutive shards (= the two pinned epochs)
        // fit, three mostly don't — so the cycle below must keep evicting
        // the shard whose pin expired.
        let pair_max = sizes.windows(2).map(|w| w[0] + w[1]).max().unwrap();
        let budget = pair_max + 1;
        let sm = StreamingMatrix::from_store(store, budget, (0, 40));
        for step in 0..8usize {
            sm.prepare(&[step * 4]);
            let _ = sm.slice(step * 4);
        }
        let s = sm.io_stats();
        assert!(s.evictions > 0, "tight budget must evict");
        let max_one = *sizes.iter().max().unwrap();
        assert!(
            s.resident_hwm_bytes <= budget + max_one,
            "resident high water {} beyond two pinned epochs + one incoming",
            s.resident_hwm_bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "exceeds the resident budget")]
    fn pinned_set_over_budget_panics_with_advice() {
        let dir = tmp_dir("overbudget");
        let a = random_csc(40, 32, 0.4, 7);
        write_csc(&dir, &a, &[0, 16, 32], None).unwrap();
        let sm = StreamingMatrix::open(&dir, 64).unwrap();
        sm.prepare(&[0, 20]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn major_spmv_matches_csr_spmv_bitwise() {
        let dir = tmp_dir("spmv");
        let mut rng = rng_from_seed(8);
        let mut coo = CooMatrix::new(25, 50);
        for i in 0..25 {
            for j in 0..50 {
                if rng.next_bool(0.15) {
                    coo.push(i, j, rng.next_gaussian());
                }
            }
        }
        let csr = coo.to_csr();
        write_csr(&dir, &csr, &[0, 9, 25], None).unwrap();
        let sm = StreamingMatrix::open(&dir, u64::MAX).unwrap();
        let x: Vec<f64> = (0..50).map(|i| (i as f64).sqrt() - 2.0).collect();
        let want = csr.spmv(&x);
        let mut got = vec![0.0; 25];
        sm.major_spmv_into(&x, &mut got);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_and_ragged_empty_slices() {
        let dir = tmp_dir("corrupt");
        // Matrix with empty columns and a very ragged shard plan.
        let mut coo = CooMatrix::new(10, 9);
        coo.push(3, 1, 1.5);
        coo.push(0, 4, -2.5);
        coo.push(9, 4, f64::MIN_POSITIVE);
        let a = coo.to_csc();
        write_csc(&dir, &a, &[0, 1, 2, 8, 9], None).unwrap();
        let store = ShardStore::open(&dir).unwrap();
        verify_store(&store, &a).unwrap();
        // Truncate a shard: open still works (manifest ok), read fails.
        let p = shard_path(&dir, 2);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 4]).unwrap();
        assert!(store.read_shard(2).is_err());
        // Break the manifest version line.
        std::fs::write(dir.join("manifest.txt"), "bogus/v9\n").unwrap();
        assert!(ShardStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_rejects_bad_input() {
        let dir = tmp_dir("reject");
        assert!(ShardWriter::create(&dir, ShardAxis::Csc, 4, 5, &[0, 4, 4]).is_err());
        assert!(ShardWriter::create(&dir, ShardAxis::Csc, 4, 5, &[1, 4]).is_err());
        let mut w = ShardWriter::create(&dir, ShardAxis::Csc, 2, 5, &[0, 2]).unwrap();
        assert!(w.append_slice(&[2, 1], &[1.0, 2.0]).is_err()); // not increasing
        assert!(w.append_slice(&[5], &[1.0]).is_err()); // out of range
        assert!(w.append_slice(&[1], &[1.0, 2.0]).is_err()); // len mismatch
        w.append_slice(&[0, 4], &[1.0, 2.0]).unwrap();
        assert!(w.finish().is_err()); // one slice short
        let _ = std::fs::remove_dir_all(&dir);
    }
}
