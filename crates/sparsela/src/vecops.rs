//! BLAS-1 style kernels over `&[f64]` slices.
//!
//! These are the per-iteration scalar/vector updates of the coordinate
//! descent methods (Fig. 1 step 5). They are deliberately simple sequential
//! loops: within a rank the solvers need deterministic, fixed-order
//! reductions so that simulated runs are bit-reproducible.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Four-way unrolled accumulation: deterministic order, lets LLVM use
    // independent FMA chains without reassociating a single serial chain.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = 4 * c;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `y ← alpha·x + y`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← alpha·x + beta·y`.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// `x ← alpha·x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn nrm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// ℓ₁ norm `‖x‖₁`.
#[inline]
pub fn asum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// ℓ∞ norm `max |xᵢ|`.
#[inline]
pub fn inf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Elementwise difference `x − y` into a fresh vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// `‖x − y‖₂` without materialising the difference.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Number of entries with `|xᵢ| > tol` (solution sparsity reporting).
pub fn nnz_count(x: &[f64], tol: f64) -> usize {
    x.iter().filter(|v| v.abs() > tol).count()
}

/// Gather `x[idx[k]]` for all `k` into a fresh vector.
pub fn gather(x: &[f64], idx: &[usize]) -> Vec<f64> {
    idx.iter().map(|&i| x[i]).collect()
}

/// Scatter-add: `x[idx[k]] += vals[k]`.
pub fn scatter_add(x: &mut [f64], idx: &[usize], vals: &[f64]) {
    assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
    for (&i, &v) in idx.iter().zip(vals) {
        x[i] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 17] {
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - naive).abs() < 1e-12 * (1.0 + naive.abs()));
        }
    }

    #[test]
    fn axpy_and_axpby() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        axpby(1.0, &x, 0.5, &mut y);
        assert_eq!(y, vec![7.0, 14.0, 21.0]);
    }

    #[test]
    fn norms() {
        let x = vec![3.0, -4.0];
        assert_eq!(nrm2(&x), 5.0);
        assert_eq!(nrm2_sq(&x), 25.0);
        assert_eq!(asum(&x), 7.0);
        assert_eq!(inf_norm(&x), 4.0);
    }

    #[test]
    fn sub_dist_nnz() {
        let x = vec![1.0, 0.0, 2.0];
        let y = vec![1.0, 1.0, 0.0];
        assert_eq!(sub(&x, &y), vec![0.0, -1.0, 2.0]);
        assert!((dist2(&x, &y) - 5.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(nnz_count(&x, 1e-12), 2);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut x = vec![0.0; 6];
        scatter_add(&mut x, &[1, 4], &[2.0, 3.0]);
        assert_eq!(gather(&x, &[1, 4, 0]), vec![2.0, 3.0, 0.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
