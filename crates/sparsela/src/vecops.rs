//! BLAS-1 style kernels over `&[f64]` slices.
//!
//! These are the per-iteration scalar/vector updates of the coordinate
//! descent methods (Fig. 1 step 5). The hot kernels (`dot`, `axpy`,
//! `axpby`, `scale`, `nrm2_sq`) dispatch through [`crate::simd`], which
//! compiles one fixed-lane-order definition per kernel for the portable,
//! AVX2 and AVX-512 builds — so results are bitwise identical at every
//! `SACO_SIMD` setting (the lane-reduction contract; see
//! `docs/PERFORMANCE.md` § "SIMD microkernels"). The solvers need
//! deterministic, fixed-order reductions so that simulated runs are
//! bit-reproducible; the SIMD dispatch never relaxes that.

use crate::simd;

/// Dot product `xᵀy`.
///
/// Four fixed accumulator lanes reduced `(acc0 + acc1) + (acc2 + acc3) +
/// tail` — the deterministic order every `SACO_SIMD` build shares.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "dot: length mismatch (x has {}, y has {})",
        x.len(),
        y.len()
    );
    simd::dot(x, y)
}

/// `y ← alpha·x + y`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch (x has {}, y has {})",
        x.len(),
        y.len()
    );
    simd::axpy(alpha, x, y);
}

/// `y ← alpha·x + beta·y`.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpby: length mismatch (x has {}, y has {})",
        x.len(),
        y.len()
    );
    simd::axpby(alpha, x, beta, y);
}

/// `x ← alpha·x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    simd::scale(alpha, x);
}

/// Euclidean norm `‖x‖₂`.
///
/// Overflow/underflow behavior (`hypot`-free scaling): when `dot(x, x)`
/// is a normal finite number the result is exactly `dot(x, x).sqrt()` —
/// the historic fast path, bitwise unchanged for every well-scaled input.
/// When the squared sum overflows to `+∞`, underflows to a subnormal, or
/// the input is empty/all-zero, the fallback rescales by `‖x‖∞` and
/// returns `‖x‖∞ · sqrt(Σ (xᵢ/‖x‖∞)²)`, which is finite (and nonzero for
/// nonzero input) whenever the true norm is representable.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    let s = simd::nrm2_sq(x);
    if s.is_normal() {
        return s.sqrt();
    }
    let m = inf_norm(x);
    if m == 0.0 {
        return 0.0;
    }
    // Scaled fallback: plain serial chain (not dispatched — trivially
    // mode-independent); only reached for extreme scales.
    let mut acc = 0.0;
    for &v in x {
        let t = v / m;
        acc += t * t;
    }
    acc.sqrt() * m
}

/// Squared Euclidean norm `‖x‖₂²` (same fixed lane order as [`dot`]).
#[inline]
pub fn nrm2_sq(x: &[f64]) -> f64 {
    simd::nrm2_sq(x)
}

/// ℓ₁ norm `‖x‖₁`.
#[inline]
pub fn asum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// ℓ∞ norm `max |xᵢ|`.
#[inline]
pub fn inf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Elementwise difference `x − y` into a fresh vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// `‖x − y‖₂` without materialising the difference.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Number of entries with `|xᵢ| > tol` (solution sparsity reporting).
pub fn nnz_count(x: &[f64], tol: f64) -> usize {
    x.iter().filter(|v| v.abs() > tol).count()
}

/// Gather `x[idx[k]]` for all `k` into a fresh vector.
///
/// # Panics
/// Panics (in release builds too) if any index is out of bounds — checked
/// up front so a bad selection fails loudly before partial work, the
/// `bucket_counts` precedent.
pub fn gather(x: &[f64], idx: &[usize]) -> Vec<f64> {
    if let Some(&bad) = idx.iter().find(|&&i| i >= x.len()) {
        panic!("gather: index {bad} out of bounds for length {}", x.len());
    }
    idx.iter().map(|&i| x[i]).collect()
}

/// Scatter-add: `x[idx[k]] += vals[k]`.
///
/// # Panics
/// Panics if `idx` and `vals` differ in length, or (in release builds
/// too, checked up front) if any index is out of bounds — a bad index
/// must not leave `x` partially updated.
pub fn scatter_add(x: &mut [f64], idx: &[usize], vals: &[f64]) {
    assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
    if let Some(&bad) = idx.iter().find(|&&i| i >= x.len()) {
        panic!(
            "scatter_add: index {bad} out of bounds for length {}",
            x.len()
        );
    }
    for (&i, &v) in idx.iter().zip(vals) {
        x[i] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 17] {
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - naive).abs() < 1e-12 * (1.0 + naive.abs()));
        }
    }

    #[test]
    fn dot_keeps_the_historic_lane_reduction_order() {
        // The fixed order (acc0+acc1)+(acc2+acc3)+tail, spelled out.
        let x: Vec<f64> = (0..11).map(|i| (i as f64 * 1.7).sin()).collect();
        let y: Vec<f64> = (0..11).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut acc = [0.0f64; 4];
        for c in 0..2 {
            for l in 0..4 {
                let i = 4 * c + l;
                acc[l] += x[i] * y[i];
            }
        }
        let mut tail = 0.0;
        for i in 8..11 {
            tail += x[i] * y[i];
        }
        let want = (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail;
        assert_eq!(dot(&x, &y).to_bits(), want.to_bits());
    }

    #[test]
    fn axpy_and_axpby() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        axpby(1.0, &x, 0.5, &mut y);
        assert_eq!(y, vec![7.0, 14.0, 21.0]);
    }

    #[test]
    fn norms() {
        let x = vec![3.0, -4.0];
        assert_eq!(nrm2(&x), 5.0);
        assert_eq!(nrm2_sq(&x), 25.0);
        assert_eq!(asum(&x), 7.0);
        assert_eq!(inf_norm(&x), 4.0);
    }

    #[test]
    fn nrm2_survives_overflow_and_underflow() {
        // dot(x,x) overflows to +inf; the scaled path stays finite.
        let big = vec![1e200, 1e200, -1e200];
        let n = nrm2(&big);
        assert!(n.is_finite());
        assert!((n / (1e200 * 3.0f64.sqrt()) - 1.0).abs() < 1e-12);

        // dot(x,x) underflows to subnormal/zero; the scaled path keeps
        // the leading digits.
        let tiny = vec![3e-200, 4e-200];
        let n = nrm2(&tiny);
        assert!(n > 0.0);
        assert!((n / 5e-200 - 1.0).abs() < 1e-12);

        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, -0.0]), 0.0);
    }

    #[test]
    fn nrm2_fast_path_is_bitwise_the_historic_formula() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64 + 0.25).cos() * 2.0).collect();
        assert_eq!(nrm2(&x).to_bits(), dot(&x, &x).sqrt().to_bits());
    }

    #[test]
    fn sub_dist_nnz() {
        let x = vec![1.0, 0.0, 2.0];
        let y = vec![1.0, 1.0, 0.0];
        assert_eq!(sub(&x, &y), vec![0.0, -1.0, 2.0]);
        assert!((dist2(&x, &y) - 5.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(nnz_count(&x, 1e-12), 2);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut x = vec![0.0; 6];
        scatter_add(&mut x, &[1, 4], &[2.0, 3.0]);
        assert_eq!(gather(&x, &[1, 4, 0]), vec![2.0, 3.0, 0.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "gather: index 6 out of bounds")]
    fn gather_bounds_panic_in_release_too() {
        gather(&[0.0; 6], &[1, 6]);
    }

    #[test]
    #[should_panic(expected = "scatter_add: index 9 out of bounds")]
    fn scatter_add_bounds_panic_before_partial_update() {
        let mut x = vec![0.0; 4];
        scatter_add(&mut x, &[0, 9], &[1.0, 1.0]);
    }

    #[test]
    fn scatter_add_does_not_partially_update_on_bad_index() {
        let mut x = vec![0.0; 4];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scatter_add(&mut x, &[0, 99], &[1.0, 1.0]);
        }));
        assert!(r.is_err());
        assert_eq!(x, vec![0.0; 4], "bounds must be checked up front");
    }
}
