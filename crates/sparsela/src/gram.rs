//! Sampled Gram matrices and cross products — the communication kernels of
//! the SA methods.
//!
//! Every iteration of Algorithm 1 reduces `G = AₕᵀAₕ` (µ×µ) and
//! `rₕ = Aₕᵀ(θ²ỹ + z̃)`; every *outer* iteration of Algorithm 2 reduces the
//! larger `G = YᵀY` (sµ×sµ) and `Yᵀ[ỹ z̃]` where `Y` stacks the `s` sampled
//! blocks. The SVM algorithms reduce the analogous row-Gram matrices. This
//! module computes the *local* contributions on one rank's block; the
//! simulator's allreduce sums them across ranks.
//!
//! Two code paths:
//! * sparse (scatter/dot over [`SparseSlice`]s) — for sparse datasets;
//!   the serial kernel scatters [`simd::SPARSE_LANES`] selected slices
//!   interleaved and streams each partner slice once per block, so the
//!   per-entry gather becomes one cache-line-wide vector load;
//! * dense (gather + blocked GEMM) — the BLAS-3 path for dense datasets,
//!   which is also what makes computing `s` iterations of dot products at
//!   once *faster per flop* than `s` separate BLAS-1 calls (Fig. 4e–h).
//!
//! Both paths have pool-parallel variants driven through `saco-par` whose
//! results are **bitwise identical** to the serial kernels (fixed tile
//! merge order, per-worker scatter workspaces — see `docs/PERFORMANCE.md`),
//! and `_with_workspace`/`_into` variants that reuse caller-owned buffers
//! so the SA hot loop allocates nothing per outer iteration.

use crate::{simd, CscMatrix, CsrMatrix, DenseMatrix, SparseSlice};

/// Anything that exposes indexed sparse slices along its major axis:
/// `CsrMatrix` (rows) for the SVM solvers, `CscMatrix` (columns) for the
/// Lasso solvers.
pub trait MajorSlices {
    /// Number of slices along the major axis.
    fn major_len(&self) -> usize;
    /// Length of the minor (dense) axis.
    fn minor_len(&self) -> usize;
    /// Borrow slice `k`.
    fn slice(&self, k: usize) -> SparseSlice<'_>;
}

impl MajorSlices for CsrMatrix {
    fn major_len(&self) -> usize {
        self.rows()
    }
    fn minor_len(&self) -> usize {
        self.cols()
    }
    fn slice(&self, k: usize) -> SparseSlice<'_> {
        self.row(k)
    }
}

impl MajorSlices for CscMatrix {
    fn major_len(&self) -> usize {
        self.cols()
    }
    fn minor_len(&self) -> usize {
        self.rows()
    }
    fn slice(&self, k: usize) -> SparseSlice<'_> {
        self.col(k)
    }
}

/// [`MajorSlices`] plus the residency protocol an *out-of-core* matrix
/// needs: solvers announce each block's selection before touching its
/// slices (`prepare`), may announce the *next* block's selection early
/// (`prefetch`, served in the background), and can ask whether early
/// announcement is worth anything (`lookahead`).
///
/// For resident matrices every hook is a no-op and `lookahead` is `false`,
/// so the generic solver loops compile down to exactly the pre-streaming
/// code — and, crucially, draw their random selections in the same order,
/// keeping in-memory runs bitwise unchanged. `sparsela::shard`'s
/// [`StreamingMatrix`](crate::shard::StreamingMatrix) implements the hooks
/// for real.
///
/// # Contract
///
/// * Every major index in a kernel call must be covered by the most recent
///   `prepare` (or fault in synchronously — correct but slow).
/// * Slices borrowed after a `prepare` remain valid until the *second*
///   following `prepare` (two live epochs — the overlap path computes the
///   next block's Gram while the current block's slices are live).
/// * None of the hooks may affect values: a streamed slice is bitwise
///   identical to its in-memory counterpart.
pub trait SliceSource: MajorSlices {
    /// Make the slices in `sel` resident and pin them for the new epoch.
    fn prepare(&self, _sel: &[usize]) {}

    /// Begin loading the slices in `sel` in the background, pinned for
    /// the epoch that the matching `prepare` will open.
    fn prefetch(&self, _sel: &[usize]) {}

    /// Whether the solver should resolve its selection one block ahead
    /// and call [`SliceSource::prefetch`] — true only for sources with
    /// actual load latency to hide.
    fn lookahead(&self) -> bool {
        false
    }

    /// `y[k] = ⟨slice(k), x⟩` for every major slice — the full-matrix
    /// product (e.g. the SVM duality-gap pass). The default iterates
    /// resident slices; out-of-core sources override it with a bounded
    /// sequential scan. Implementations must keep the per-slice
    /// `dot_dense` arithmetic so all paths agree bitwise.
    fn major_spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.minor_len(), "spmv input length");
        assert_eq!(y.len(), self.major_len(), "spmv output length");
        for k in 0..self.major_len() {
            y[k] = self.slice(k).dot_dense(x);
        }
    }

    /// `y[k] = ‖slice(k)‖²` for every major slice — the one-time norms
    /// pass an RBF kernel needs. Defaults to resident iteration;
    /// out-of-core sources override it with a bounded sequential scan.
    /// All paths keep the per-slice `norm_sq` arithmetic, so they agree
    /// bitwise.
    fn major_norms_into(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.major_len(), "norms output length");
        for k in 0..self.major_len() {
            y[k] = self.slice(k).norm_sq();
        }
    }
}

impl SliceSource for CsrMatrix {}
impl SliceSource for CscMatrix {}

/// Reusable scratch for the sparse Gram kernels: a dense scatter buffer
/// of minor length (one column at a time — the pooled per-row path) and a
/// 64-byte-aligned *interleaved* buffer holding [`simd::SPARSE_LANES`]
/// scattered columns side by side (the serial SIMD block pass). Creating
/// either per call costs an `O(minor_len)` zero-fill *and* an allocation;
/// holding them across calls (both are restored to all-zeros by the
/// kernels' un-scatter passes) makes repeated `sampled_gram` calls
/// allocation-free.
#[derive(Clone, Debug, Default)]
pub struct GramWorkspace {
    scatter: Vec<f64>,
    interleaved: simd::AlignedBuf,
}

impl GramWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scatter buffer at length `minor_len`, all zeros. Grows (with a
    /// zero fill of the new tail) when the matrix is larger than any seen
    /// before; otherwise this is free — the kernels' un-scatter pass
    /// maintains the all-zeros invariant between calls.
    fn scatter_for(&mut self, minor_len: usize) -> &mut [f64] {
        if self.scatter.len() < minor_len {
            self.scatter.resize(minor_len, 0.0);
        }
        &mut self.scatter[..minor_len]
    }

    /// The interleaved scatter buffer at `SPARSE_LANES · minor_len`, all
    /// zeros, 64-byte aligned (row `i` of all lanes is one cache line).
    /// Same grow-only, zero-maintained contract as
    /// [`Self::scatter_for`].
    fn interleaved_for(&mut self, minor_len: usize) -> &mut [f64] {
        self.interleaved.zeroed_to(simd::SPARSE_LANES * minor_len)
    }
}

/// One upper-triangle row of the sampled Gram: scatter slice `a`, take
/// its `norm_sq` for the diagonal and a sparse dot per later slice. This
/// is THE per-entry arithmetic — serial and pooled paths both call it, so
/// their outputs agree bitwise.
fn gram_row<M: MajorSlices>(m: &M, sel: &[usize], a: usize, work: &mut [f64], row: &mut Vec<f64>) {
    let k = sel.len();
    let sa = m.slice(sel[a]);
    for (&i, &v) in sa.indices.iter().zip(sa.values) {
        work[i] = v;
    }
    row.clear();
    row.reserve(k - a);
    row.push(sa.norm_sq());
    for &sb in &sel[a + 1..] {
        row.push(m.slice(sb).dot_dense_sparse(work));
    }
    for &i in sa.indices {
        work[i] = 0.0;
    }
}

/// Compute the Gram matrix `G[a][b] = ⟨slice(sel[a]), slice(sel[b])⟩` of the
/// sampled slices, exploiting symmetry (upper triangle computed, mirrored —
/// the paper's footnote-3 2× flop saving).
///
/// Cost: O(k · nnz(selected)) via a dense scatter workspace of minor length.
/// Allocates the workspace and output; the SA hot loop should prefer
/// [`sampled_gram_into`] (or [`sampled_gram_with_workspace`]) to reuse both.
pub fn sampled_gram<M: MajorSlices>(m: &M, sel: &[usize]) -> DenseMatrix {
    sampled_gram_with_workspace(m, sel, &mut GramWorkspace::new())
}

/// [`sampled_gram`] against a caller-owned [`GramWorkspace`], skipping the
/// per-call `O(minor_len)` scatter-buffer zero-fill. Bitwise identical to
/// [`sampled_gram`].
pub fn sampled_gram_with_workspace<M: MajorSlices>(
    m: &M,
    sel: &[usize],
    ws: &mut GramWorkspace,
) -> DenseMatrix {
    let k = sel.len();
    let mut g = DenseMatrix::zeros(k, k);
    gram_serial_core(m, sel, ws, &mut g);
    g
}

/// Serial scatter-dot core: [`simd::SPARSE_LANES`] selected slices are
/// scattered *interleaved* (lane `l` of row `i` at `work[LANES·i + l]`),
/// then one streaming pass over each partner slice `b` produces up to
/// `LANES` Gram entries at once — the old per-entry gather becomes one
/// contiguous cache-line-wide load per nonzero.
///
/// Bitwise identical to the per-row [`gram_row`] path (which the pooled
/// variant still uses): each lane's accumulator follows exactly the
/// single-chain order of `dot_dense` over slice `b`'s nonzeros, and
/// diagonals are the same `norm_sq`. Only instruction scheduling differs.
fn gram_serial_core<M: MajorSlices>(
    m: &M,
    sel: &[usize],
    ws: &mut GramWorkspace,
    out: &mut DenseMatrix,
) {
    const L: usize = simd::SPARSE_LANES;
    let k = sel.len();
    let work = ws.interleaved_for(m.minor_len());
    let mut a0 = 0;
    while a0 < k {
        let aw = (k - a0).min(L);
        // Scatter the block's lanes and set its diagonal entries.
        // Duplicate selections land in distinct lanes, so they coexist.
        for l in 0..aw {
            let sa = m.slice(sel[a0 + l]);
            for (&i, &v) in sa.indices.iter().zip(sa.values) {
                work[L * i + l] = v;
            }
            out.set(a0 + l, a0 + l, sa.norm_sq());
        }
        // One pass per partner slice b > a0; lanes l < b − a0 are the
        // strictly-upper entries (a0 + l, b), mirrored as we go.
        for b in a0 + 1..k {
            let lw = (b - a0).min(aw);
            let sb = m.slice(sel[b]);
            let mut lanes = [0.0f64; L];
            simd::scatter_dot_lanes(sb.indices, sb.values, work, &mut lanes);
            for l in 0..lw {
                out.set(a0 + l, b, lanes[l]);
                out.set(b, a0 + l, lanes[l]);
            }
        }
        // Un-scatter: restore the workspace's all-zeros invariant.
        for l in 0..aw {
            for &i in m.slice(sel[a0 + l]).indices {
                work[L * i + l] = 0.0;
            }
        }
        a0 += L;
    }
}

/// Fully workspace-reusing sampled Gram: writes into `out` (reshaped to
/// `k×k` in place) and, when `nthreads > 1`, tiles the upper-triangle rows
/// over the `saco-par` pool with one scatter workspace per worker, merged
/// in fixed row order. Bitwise identical to [`sampled_gram`] at any
/// thread count — the pooled path computes every entry with the same
/// [`gram_row`] arithmetic.
pub fn sampled_gram_into<M: MajorSlices + Sync>(
    m: &M,
    sel: &[usize],
    nthreads: usize,
    ws: &mut GramWorkspace,
    out: &mut DenseMatrix,
) {
    let k = sel.len();
    out.reshape_zeroed(k, k);
    // One tile per upper-triangle row: row a costs (k − a) pair-dots, so
    // fine-grained tiles plus the pool's dynamic claiming balance the
    // triangle without a static schedule. Row a scatters slice a then
    // dots it against every slice b ≥ a (~2·nnz_b each); the suffix-sum
    // estimate below decides up front whether the whole triangle is
    // cheaper than spawning workers — in which case we skip not just the
    // pool but the tiled path's per-row buffers and merge copies, and run
    // the serial SIMD block kernel directly.
    let mut work = 0u64;
    let mut suffix = 0u64;
    for &j in sel.iter().rev() {
        let nnz = m.slice(j).nnz() as u64;
        suffix += 2 * nnz;
        work += nnz + suffix;
    }
    if k < 4 || nthreads <= 1 {
        gram_serial_core(m, sel, ws, out);
        return;
    }
    if saco_par::dispatch_width(nthreads, k, work) <= 1 {
        // Sub-dispatch-size with a pool requested: run the serial core
        // but count the region, like tiled_map_weighted's own fallback,
        // so `par.regions` keeps tracking pooled-kernel invocations.
        saco_par::serial_region(k, || gram_serial_core(m, sel, ws, out));
        return;
    }
    let rows = saco_par::tiled_map_weighted(
        nthreads,
        k,
        work,
        || (GramWorkspace::new(), Vec::new()),
        |(ws, row), a| {
            gram_row(m, sel, a, ws.scatter_for(m.minor_len()), row);
            std::mem::take(row)
        },
    );
    for (a, row) in rows.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            out.set(a, a + off, v);
            out.set(a + off, a, v);
        }
    }
}

/// Multi-threaded [`sampled_gram`] over the `saco-par` pool. Each entry
/// is computed by exactly the same scatter-dot as the sequential kernel
/// and rows merge in fixed order, so the result is **bitwise identical**
/// — threading here is free parallelism, not a numerics change.
///
/// This is the shared-memory, within-rank parallelism a production rank
/// would use on a multicore node; the deterministic-by-construction design
/// keeps the SA equivalence guarantees intact. The kernel is
/// memory-bandwidth bound, so the realized speedup depends on the host's
/// spare bandwidth, not its core count — benchmark before relying on it
/// (`cargo bench -p saco-bench --bench kernels`, group `sampled_gram_256`).
pub fn sampled_gram_parallel<M: MajorSlices + Sync>(
    m: &M,
    sel: &[usize],
    nthreads: usize,
) -> DenseMatrix {
    let mut g = DenseMatrix::zeros(0, 0);
    sampled_gram_into(m, sel, nthreads, &mut GramWorkspace::new(), &mut g);
    g
}

/// Cross product `C[a][j] = ⟨slice(sel[a]), vs[j]⟩` for a small set of dense
/// vectors (e.g. `[ỹ, z̃]` in Alg. 2 line 12, or `x` in Alg. 4 line 10).
pub fn sampled_cross<M: MajorSlices>(m: &M, sel: &[usize], vs: &[&[f64]]) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(0, 0);
    sampled_cross_into(m, sel, vs, &mut c);
    c
}

/// [`sampled_cross`] into a caller-owned output matrix (reshaped in
/// place), so the SA hot loop reuses one allocation across outer
/// iterations.
pub fn sampled_cross_into<M: MajorSlices>(
    m: &M,
    sel: &[usize],
    vs: &[&[f64]],
    out: &mut DenseMatrix,
) {
    // Validate each vector once, not once per selected slice.
    for v in vs {
        assert_eq!(
            v.len(),
            m.minor_len(),
            "cross-product vector length mismatch"
        );
    }
    out.reshape_zeroed(sel.len(), vs.len());
    for (a, &s) in sel.iter().enumerate() {
        let sl = m.slice(s);
        for (j, v) in vs.iter().enumerate() {
            out.set(a, j, sl.dot_dense(v));
        }
    }
}

impl SparseSlice<'_> {
    /// Dot against a scattered dense workspace, iterating this (sparse)
    /// slice. Same as `dot_dense` but named separately for clarity at the
    /// Gram call site, where `work` holds another slice's scattered values.
    #[inline]
    fn dot_dense_sparse(&self, work: &[f64]) -> f64 {
        self.dot_dense(work)
    }
}

/// Dense-path Gram: gather sampled columns into a dense block and use the
/// cache-blocked symmetric GEMM (pool-parallel over `saco-par` when the
/// global thread count is raised). Numerically equivalent to
/// [`sampled_gram`] (same pairwise products, different summation order →
/// agreement to round-off), but runs at BLAS-3 rates for dense data.
pub fn sampled_gram_dense(m: &CscMatrix, sel: &[usize]) -> DenseMatrix {
    m.gather_columns_dense(sel)
        .gram_parallel(saco_par::threads())
}

/// Flop count of the sampled Gram kernel as executed: for the slice at
/// triangle position `b` (0-based), `norm_sq` on the diagonal costs
/// `2·nnz_b` and each of the `b` pair-dots against an earlier scattered
/// slice iterates *this* slice's nonzeros (`2·nnz_b` each) — so position
/// `b` is charged `2·nnz_b·(b + 1)`.
///
/// For uniform slice density this sums to `nnz(selected)·(k + 1)`,
/// matching the aggregate per-rank charge in `saco::dist::charges`
/// (`gram_flops = local_nnz·(width + 1)`): both account the upper
/// triangle only — the paper's footnote-3 2× saving over the full
/// `2·k·nnz` rectangular product.
pub fn gram_flops<M: MajorSlices>(m: &M, sel: &[usize]) -> u64 {
    sel.iter()
        .enumerate()
        .map(|(b, &s)| 2 * m.slice(s).nnz() as u64 * (b as u64 + 1))
        .sum()
}

/// Flop count of a sampled cross product.
pub fn cross_flops<M: MajorSlices>(m: &M, sel: &[usize], nvecs: usize) -> u64 {
    sel.iter()
        .map(|&s| 2 * m.slice(s).nnz() as u64 * nvecs as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use xrng::rng_from_seed;

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CooMatrix {
        let mut rng = rng_from_seed(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.next_bool(density) {
                    coo.push(i, j, rng.next_gaussian());
                }
            }
        }
        coo
    }

    #[test]
    fn csc_sampled_gram_matches_dense_reference() {
        let coo = random_sparse(40, 25, 0.3, 1);
        let csc = coo.to_csc();
        let sel = vec![3, 17, 0, 9, 24];
        let g = sampled_gram(&csc, &sel);
        let dense_ref = sampled_gram_dense(&csc, &sel);
        for a in 0..5 {
            for b in 0..5 {
                assert!(
                    (g.get(a, b) - dense_ref.get(a, b)).abs() < 1e-10,
                    "mismatch at ({a},{b})"
                );
            }
        }
        assert!(g.is_symmetric(1e-14));
    }

    #[test]
    fn csr_sampled_gram_is_row_gram() {
        let coo = random_sparse(30, 50, 0.2, 2);
        let csr = coo.to_csr();
        let sel = vec![5, 5, 12]; // repeated row allowed (SVM samples with replacement)
        let g = sampled_gram(&csr, &sel);
        let d = csr.to_dense();
        for a in 0..3 {
            for b in 0..3 {
                let expect: f64 = (0..50).map(|j| d.get(sel[a], j) * d.get(sel[b], j)).sum();
                assert!((g.get(a, b) - expect).abs() < 1e-10);
            }
        }
        // repeated slice => identical rows/cols in G
        assert!((g.get(0, 0) - g.get(1, 1)).abs() < 1e-15);
        assert!((g.get(0, 2) - g.get(1, 2)).abs() < 1e-15);
    }

    #[test]
    fn sampled_cross_matches_dense() {
        let coo = random_sparse(40, 25, 0.25, 3);
        let csc = coo.to_csc();
        let mut rng = rng_from_seed(4);
        let v1: Vec<f64> = (0..40).map(|_| rng.next_gaussian()).collect();
        let v2: Vec<f64> = (0..40).map(|_| rng.next_gaussian()).collect();
        let sel = vec![2, 11, 20];
        let c = sampled_cross(&csc, &sel, &[&v1, &v2]);
        let d = csc.to_dense();
        for (a, &j) in sel.iter().enumerate() {
            let e1: f64 = (0..40).map(|i| d.get(i, j) * v1[i]).sum();
            let e2: f64 = (0..40).map(|i| d.get(i, j) * v2[i]).sum();
            assert!((c.get(a, 0) - e1).abs() < 1e-10);
            assert!((c.get(a, 1) - e2).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_selection_gives_empty_gram() {
        let csc = random_sparse(10, 10, 0.5, 5).to_csc();
        let g = sampled_gram(&csc, &[]);
        assert_eq!((g.rows(), g.cols()), (0, 0));
    }

    #[test]
    fn gram_is_positive_semidefinite() {
        // xᵀGx = ‖A_S x‖² ≥ 0 for random x.
        let csc = random_sparse(60, 30, 0.2, 6).to_csc();
        let sel = vec![1, 4, 9, 16, 25];
        let g = sampled_gram(&csc, &sel);
        let mut rng = rng_from_seed(7);
        for _ in 0..20 {
            let x: Vec<f64> = (0..5).map(|_| rng.next_gaussian()).collect();
            let gx = g.gemv(&x);
            let q = crate::vecops::dot(&x, &gx);
            assert!(q >= -1e-10, "Gram quadratic form negative: {q}");
        }
    }

    #[test]
    fn flop_counters_are_positive_and_scale() {
        let csc = random_sparse(60, 30, 0.2, 8).to_csc();
        let f1 = gram_flops(&csc, &[0, 1]);
        let f2 = gram_flops(&csc, &[0, 1, 2, 3]);
        assert!(f2 > f1, "more samples must cost more flops");
        assert!(cross_flops(&csc, &[0, 1], 2) > 0);
    }

    #[test]
    fn gram_flops_charge_the_triangle_exactly() {
        // Position b pays 2·nnz_b·(b+1): its norm_sq diagonal plus the b
        // pair-dots that iterate its nonzeros against earlier scattered
        // slices. Pin it on a matrix with known column counts.
        let mut coo = CooMatrix::new(6, 3);
        for i in 0..2 {
            coo.push(i, 0, 1.0); // col 0: nnz 2
        }
        for i in 0..3 {
            coo.push(i, 1, 1.0); // col 1: nnz 3
        }
        for i in 0..5 {
            coo.push(i, 2, 1.0); // col 2: nnz 5
        }
        let csc = coo.to_csc();
        // sel = [2, 0, 1] → 2·5·1 + 2·2·2 + 2·3·3 = 10 + 8 + 18
        assert_eq!(gram_flops(&csc, &[2, 0, 1]), 36);
        // Uniform-nnz aggregate matches local_nnz·(k+1), the dist-engine
        // charge formula.
        let uni = random_sparse(40, 8, 1.0, 9).to_csc(); // dense => nnz 40 per col
        let sel: Vec<usize> = (0..8).collect();
        assert_eq!(gram_flops(&uni, &sel), 40 * 8 * (8 + 1));
    }

    #[test]
    fn interleaved_serial_core_matches_gram_row_bitwise() {
        // The serial core's SPARSE_LANES-interleaved pass must reproduce
        // the per-row gram_row arithmetic bit for bit — that identity is
        // what keeps the pooled path (which still uses gram_row) bitwise
        // equal to the serial kernel. Selection includes a duplicate and
        // a ragged tail (11 = 8 + 3 lanes).
        let csc = random_sparse(80, 40, 0.2, 20).to_csc();
        let sel = vec![0usize, 3, 3, 7, 11, 12, 19, 25, 31, 39, 2];
        let g = sampled_gram(&csc, &sel);
        let mut work = vec![0.0; 80];
        let mut row = Vec::new();
        for a in 0..sel.len() {
            gram_row(&csc, &sel, a, &mut work, &mut row);
            for (off, &v) in row.iter().enumerate() {
                assert_eq!(
                    g.get(a, a + off).to_bits(),
                    v.to_bits(),
                    "entry ({a},{})",
                    a + off
                );
            }
        }
    }

    #[test]
    fn workspace_variant_is_bitwise_identical_and_reusable() {
        let csc = random_sparse(50, 20, 0.3, 10).to_csc();
        let mut ws = GramWorkspace::new();
        let sel_a = vec![0, 3, 7, 11];
        let sel_b: Vec<usize> = (0..20).collect();
        // Reuse the same workspace across differently-shaped calls.
        for sel in [&sel_a, &sel_b, &sel_a] {
            let fresh = sampled_gram(&csc, sel);
            let reused = sampled_gram_with_workspace(&csc, sel, &mut ws);
            assert_eq!(fresh.as_slice(), reused.as_slice());
        }
        // And the _into variant reuses the output allocation too.
        let mut out = DenseMatrix::zeros(0, 0);
        sampled_gram_into(&csc, &sel_b, 1, &mut ws, &mut out);
        assert_eq!(out.as_slice(), sampled_gram(&csc, &sel_b).as_slice());
        sampled_gram_into(&csc, &sel_a, 1, &mut ws, &mut out);
        assert_eq!(out.as_slice(), sampled_gram(&csc, &sel_a).as_slice());
    }

    #[test]
    fn cross_into_reuses_output() {
        let csc = random_sparse(30, 12, 0.4, 11).to_csc();
        let v: Vec<f64> = (0..30).map(|i| i as f64 * 0.25 - 3.0).collect();
        let mut out = DenseMatrix::zeros(0, 0);
        sampled_cross_into(&csc, &[1, 5, 9], &[&v], &mut out);
        assert_eq!(
            out.as_slice(),
            sampled_cross(&csc, &[1, 5, 9], &[&v]).as_slice()
        );
        sampled_cross_into(&csc, &[2], &[&v], &mut out);
        assert_eq!((out.rows(), out.cols()), (1, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn cross_length_mismatch_still_panics() {
        let csc = random_sparse(30, 12, 0.4, 12).to_csc();
        let short = vec![0.0; 29];
        let _ = sampled_cross(&csc, &[0], &[&short]);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::CooMatrix;
    use xrng::rng_from_seed;

    fn random_csc(rows: usize, cols: usize, density: f64, seed: u64) -> crate::CscMatrix {
        let mut rng = rng_from_seed(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.next_bool(density) {
                    coo.push(i, j, rng.next_gaussian());
                }
            }
        }
        coo.to_csc()
    }

    #[test]
    fn parallel_gram_is_bitwise_identical() {
        // Dense enough that the work estimate clears MIN_DISPATCH_WORK
        // (~2.6M estimated ops): on multi-core hosts the pool genuinely
        // engages (on 1-CPU hosts dispatch_width still serializes — also
        // a valid data point).
        let csc = random_csc(600, 120, 0.3, 41);
        let sel: Vec<usize> = (0..120).collect();
        let seq = sampled_gram(&csc, &sel);
        for threads in [1usize, 2, 3, 7, 64] {
            let par = sampled_gram_parallel(&csc, &sel, threads);
            assert_eq!(
                par.as_slice(),
                seq.as_slice(),
                "threads={threads}: parallel gram must be bitwise identical"
            );
        }
    }

    #[test]
    fn tiny_selections_fall_back_to_sequential() {
        let csc = random_csc(20, 10, 0.3, 42);
        let g = sampled_gram_parallel(&csc, &[1, 5], 8);
        assert_eq!(g.as_slice(), sampled_gram(&csc, &[1, 5]).as_slice());
        let empty = sampled_gram_parallel(&csc, &[], 4);
        assert_eq!((empty.rows(), empty.cols()), (0, 0));
    }

    #[test]
    fn dense_gram_parallel_is_bitwise_identical() {
        // 80·81·200 ≈ 1.3M estimated ops — above MIN_DISPATCH_WORK, so
        // multi-core hosts exercise the genuinely pooled band path.
        let mut rng = rng_from_seed(43);
        let data: Vec<f64> = (0..200 * 80).map(|_| rng.next_gaussian()).collect();
        let a = DenseMatrix::from_vec(200, 80, data);
        let seq = a.gram();
        for threads in [1usize, 2, 4, 7, 16] {
            let par = a.gram_parallel(threads);
            assert_eq!(par.as_slice(), seq.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn matmul_parallel_is_bitwise_identical() {
        let mut rng = rng_from_seed(44);
        let a = DenseMatrix::from_vec(
            150,
            70,
            (0..150 * 70).map(|_| rng.next_gaussian()).collect(),
        );
        let b = DenseMatrix::from_vec(70, 90, (0..70 * 90).map(|_| rng.next_gaussian()).collect());
        let seq = a.matmul(&b);
        for threads in [1usize, 2, 4, 7] {
            let par = a.matmul_parallel(&b, threads);
            assert_eq!(par.as_slice(), seq.as_slice(), "threads={threads}");
        }
    }
}
