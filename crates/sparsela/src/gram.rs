//! Sampled Gram matrices and cross products — the communication kernels of
//! the SA methods.
//!
//! Every iteration of Algorithm 1 reduces `G = AₕᵀAₕ` (µ×µ) and
//! `rₕ = Aₕᵀ(θ²ỹ + z̃)`; every *outer* iteration of Algorithm 2 reduces the
//! larger `G = YᵀY` (sµ×sµ) and `Yᵀ[ỹ z̃]` where `Y` stacks the `s` sampled
//! blocks. The SVM algorithms reduce the analogous row-Gram matrices. This
//! module computes the *local* contributions on one rank's block; the
//! simulator's allreduce sums them across ranks.
//!
//! Two code paths:
//! * sparse (scatter/dot over [`SparseSlice`]s) — for sparse datasets;
//! * dense (gather + blocked GEMM) — the BLAS-3 path for dense datasets,
//!   which is also what makes computing `s` iterations of dot products at
//!   once *faster per flop* than `s` separate BLAS-1 calls (Fig. 4e–h).

use crate::{CscMatrix, CsrMatrix, DenseMatrix, SparseSlice};

/// Anything that exposes indexed sparse slices along its major axis:
/// `CsrMatrix` (rows) for the SVM solvers, `CscMatrix` (columns) for the
/// Lasso solvers.
pub trait MajorSlices {
    /// Number of slices along the major axis.
    fn major_len(&self) -> usize;
    /// Length of the minor (dense) axis.
    fn minor_len(&self) -> usize;
    /// Borrow slice `k`.
    fn slice(&self, k: usize) -> SparseSlice<'_>;
}

impl MajorSlices for CsrMatrix {
    fn major_len(&self) -> usize {
        self.rows()
    }
    fn minor_len(&self) -> usize {
        self.cols()
    }
    fn slice(&self, k: usize) -> SparseSlice<'_> {
        self.row(k)
    }
}

impl MajorSlices for CscMatrix {
    fn major_len(&self) -> usize {
        self.cols()
    }
    fn minor_len(&self) -> usize {
        self.rows()
    }
    fn slice(&self, k: usize) -> SparseSlice<'_> {
        self.col(k)
    }
}

/// Compute the Gram matrix `G[a][b] = ⟨slice(sel[a]), slice(sel[b])⟩` of the
/// sampled slices, exploiting symmetry (upper triangle computed, mirrored —
/// the paper's footnote-3 2× flop saving).
///
/// Cost: O(k · nnz(selected)) via a dense scatter workspace of minor length.
pub fn sampled_gram<M: MajorSlices>(m: &M, sel: &[usize]) -> DenseMatrix {
    let k = sel.len();
    let mut g = DenseMatrix::zeros(k, k);
    let mut work = vec![0.0; m.minor_len()];
    for a in 0..k {
        let sa = m.slice(sel[a]);
        // scatter slice a
        for (&i, &v) in sa.indices.iter().zip(sa.values) {
            work[i] = v;
        }
        g.set(a, a, sa.norm_sq());
        for b in (a + 1)..k {
            let v = m.slice(sel[b]).dot_dense_sparse(&work);
            g.set(a, b, v);
            g.set(b, a, v);
        }
        // clear workspace
        for &i in sa.indices {
            work[i] = 0.0;
        }
    }
    g
}

/// Cross product `C[a][j] = ⟨slice(sel[a]), vs[j]⟩` for a small set of dense
/// vectors (e.g. `[ỹ, z̃]` in Alg. 2 line 12, or `x` in Alg. 4 line 10).
pub fn sampled_cross<M: MajorSlices>(m: &M, sel: &[usize], vs: &[&[f64]]) -> DenseMatrix {
    let k = sel.len();
    let mut c = DenseMatrix::zeros(k, vs.len());
    for (a, &s) in sel.iter().enumerate() {
        let sl = m.slice(s);
        for (j, v) in vs.iter().enumerate() {
            assert_eq!(
                v.len(),
                m.minor_len(),
                "cross-product vector length mismatch"
            );
            c.set(a, j, sl.dot_dense(v));
        }
    }
    c
}

impl SparseSlice<'_> {
    /// Dot against a scattered dense workspace, iterating this (sparse)
    /// slice. Same as `dot_dense` but named separately for clarity at the
    /// Gram call site, where `work` holds another slice's scattered values.
    #[inline]
    fn dot_dense_sparse(&self, work: &[f64]) -> f64 {
        self.dot_dense(work)
    }
}

/// Dense-path Gram: gather sampled columns into a dense block and use the
/// cache-blocked symmetric GEMM. Numerically equivalent to [`sampled_gram`]
/// (same pairwise products, different summation order → agreement to
/// round-off), but runs at BLAS-3 rates for dense data.
pub fn sampled_gram_dense(m: &CscMatrix, sel: &[usize]) -> DenseMatrix {
    m.gather_columns_dense(sel).gram()
}

/// Flop count of a sampled Gram computation: one multiply-add per pairwise
/// index match, upper triangle only. Used by the solvers to charge the
/// simulator's cost model with the work they actually did.
pub fn gram_flops<M: MajorSlices>(m: &M, sel: &[usize]) -> u64 {
    // Upper bound: for each ordered pair (a, b<=a) the merge visits
    // nnz_a + nnz_b entries. We charge the scatter-dot cost actually used:
    // sum over a of (k - a) * nnz_a + k * nnz_a ~= accumulate precisely.
    let k = sel.len();
    let mut flops = 0u64;
    for (a, &s) in sel.iter().enumerate() {
        let nnz = m.slice(s).nnz() as u64;
        // diagonal + scatter + (k - a - 1) dot passes over later slices is
        // accounted from the other side; charge 2*nnz per pair member.
        flops += 2 * nnz * (k - a) as u64;
    }
    flops
}

/// Flop count of a sampled cross product.
pub fn cross_flops<M: MajorSlices>(m: &M, sel: &[usize], nvecs: usize) -> u64 {
    sel.iter()
        .map(|&s| 2 * m.slice(s).nnz() as u64 * nvecs as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use xrng::rng_from_seed;

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CooMatrix {
        let mut rng = rng_from_seed(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.next_bool(density) {
                    coo.push(i, j, rng.next_gaussian());
                }
            }
        }
        coo
    }

    #[test]
    fn csc_sampled_gram_matches_dense_reference() {
        let coo = random_sparse(40, 25, 0.3, 1);
        let csc = coo.to_csc();
        let sel = vec![3, 17, 0, 9, 24];
        let g = sampled_gram(&csc, &sel);
        let dense_ref = sampled_gram_dense(&csc, &sel);
        for a in 0..5 {
            for b in 0..5 {
                assert!(
                    (g.get(a, b) - dense_ref.get(a, b)).abs() < 1e-10,
                    "mismatch at ({a},{b})"
                );
            }
        }
        assert!(g.is_symmetric(1e-14));
    }

    #[test]
    fn csr_sampled_gram_is_row_gram() {
        let coo = random_sparse(30, 50, 0.2, 2);
        let csr = coo.to_csr();
        let sel = vec![5, 5, 12]; // repeated row allowed (SVM samples with replacement)
        let g = sampled_gram(&csr, &sel);
        let d = csr.to_dense();
        for a in 0..3 {
            for b in 0..3 {
                let expect: f64 = (0..50).map(|j| d.get(sel[a], j) * d.get(sel[b], j)).sum();
                assert!((g.get(a, b) - expect).abs() < 1e-10);
            }
        }
        // repeated slice => identical rows/cols in G
        assert!((g.get(0, 0) - g.get(1, 1)).abs() < 1e-15);
        assert!((g.get(0, 2) - g.get(1, 2)).abs() < 1e-15);
    }

    #[test]
    fn sampled_cross_matches_dense() {
        let coo = random_sparse(40, 25, 0.25, 3);
        let csc = coo.to_csc();
        let mut rng = rng_from_seed(4);
        let v1: Vec<f64> = (0..40).map(|_| rng.next_gaussian()).collect();
        let v2: Vec<f64> = (0..40).map(|_| rng.next_gaussian()).collect();
        let sel = vec![2, 11, 20];
        let c = sampled_cross(&csc, &sel, &[&v1, &v2]);
        let d = csc.to_dense();
        for (a, &j) in sel.iter().enumerate() {
            let e1: f64 = (0..40).map(|i| d.get(i, j) * v1[i]).sum();
            let e2: f64 = (0..40).map(|i| d.get(i, j) * v2[i]).sum();
            assert!((c.get(a, 0) - e1).abs() < 1e-10);
            assert!((c.get(a, 1) - e2).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_selection_gives_empty_gram() {
        let csc = random_sparse(10, 10, 0.5, 5).to_csc();
        let g = sampled_gram(&csc, &[]);
        assert_eq!((g.rows(), g.cols()), (0, 0));
    }

    #[test]
    fn gram_is_positive_semidefinite() {
        // xᵀGx = ‖A_S x‖² ≥ 0 for random x.
        let csc = random_sparse(60, 30, 0.2, 6).to_csc();
        let sel = vec![1, 4, 9, 16, 25];
        let g = sampled_gram(&csc, &sel);
        let mut rng = rng_from_seed(7);
        for _ in 0..20 {
            let x: Vec<f64> = (0..5).map(|_| rng.next_gaussian()).collect();
            let gx = g.gemv(&x);
            let q = crate::vecops::dot(&x, &gx);
            assert!(q >= -1e-10, "Gram quadratic form negative: {q}");
        }
    }

    #[test]
    fn flop_counters_are_positive_and_scale() {
        let csc = random_sparse(60, 30, 0.2, 8).to_csc();
        let f1 = gram_flops(&csc, &[0, 1]);
        let f2 = gram_flops(&csc, &[0, 1, 2, 3]);
        assert!(f2 > f1, "more samples must cost more flops");
        assert!(cross_flops(&csc, &[0, 1], 2) > 0);
    }
}

/// Multi-threaded [`sampled_gram`]: rows of the upper triangle are
/// distributed round-robin over `nthreads` OS threads (round-robin because
/// row `a` costs `(k − a)` pair-dots — contiguous chunks would straggle).
/// Each entry is computed by exactly the same scatter-dot as the
/// sequential kernel, so the result is **bitwise identical** — threading
/// here is free parallelism, not a numerics change.
///
/// This is the shared-memory, within-rank parallelism a production rank
/// would use on a multicore node; the deterministic-by-construction design
/// keeps the SA equivalence guarantees intact. The kernel is
/// memory-bandwidth bound, so the realized speedup depends on the host's
/// spare bandwidth, not its core count — benchmark before relying on it
/// (`cargo bench -p saco-bench --bench kernels`, group `sampled_gram_256`).
pub fn sampled_gram_parallel<M: MajorSlices + Sync>(
    m: &M,
    sel: &[usize],
    nthreads: usize,
) -> DenseMatrix {
    let k = sel.len();
    let nthreads = nthreads.max(1).min(k.max(1));
    if nthreads <= 1 || k < 4 {
        return sampled_gram(m, sel);
    }
    // Each thread computes full upper-triangle rows into its own buffer.
    let rows: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                scope.spawn(move || {
                    let mut work = vec![0.0; m.minor_len()];
                    let mut out = Vec::new();
                    let mut a = t;
                    while a < k {
                        let sa = m.slice(sel[a]);
                        for (&i, &v) in sa.indices.iter().zip(sa.values) {
                            work[i] = v;
                        }
                        let mut row = Vec::with_capacity(k - a);
                        row.push(sa.norm_sq());
                        for b in (a + 1)..k {
                            row.push(m.slice(sel[b]).dot_dense(&work));
                        }
                        for &i in sa.indices {
                            work[i] = 0.0;
                        }
                        out.push((a, row));
                        a += nthreads;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gram worker panicked"))
            .collect()
    });
    let mut g = DenseMatrix::zeros(k, k);
    for part in rows {
        for (a, row) in part {
            for (off, &v) in row.iter().enumerate() {
                g.set(a, a + off, v);
                g.set(a + off, a, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::CooMatrix;
    use xrng::rng_from_seed;

    fn random_csc(rows: usize, cols: usize, density: f64, seed: u64) -> crate::CscMatrix {
        let mut rng = rng_from_seed(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.next_bool(density) {
                    coo.push(i, j, rng.next_gaussian());
                }
            }
        }
        coo.to_csc()
    }

    #[test]
    fn parallel_gram_is_bitwise_identical() {
        let csc = random_csc(300, 120, 0.1, 41);
        let sel: Vec<usize> = (0..120).step_by(2).collect();
        let seq = sampled_gram(&csc, &sel);
        for threads in [1usize, 2, 3, 7, 64] {
            let par = sampled_gram_parallel(&csc, &sel, threads);
            assert_eq!(
                par.as_slice(),
                seq.as_slice(),
                "threads={threads}: parallel gram must be bitwise identical"
            );
        }
    }

    #[test]
    fn tiny_selections_fall_back_to_sequential() {
        let csc = random_csc(20, 10, 0.3, 42);
        let g = sampled_gram_parallel(&csc, &[1, 5], 8);
        assert_eq!(g.as_slice(), sampled_gram(&csc, &[1, 5]).as_slice());
        let empty = sampled_gram_parallel(&csc, &[], 4);
        assert_eq!((empty.rows(), empty.cols()), (0, 0));
    }
}
