//! Explicit-width SIMD microkernels with a deterministic lane-reduction
//! contract.
//!
//! Every kernel here is written once, as a *portable* Rust function with a
//! **fixed** lane structure — a fixed number of partial accumulators,
//! combined in a fixed left-to-right order — and then compiled a second and
//! third time behind `#[target_feature(enable = "avx2"/"avx512f")]`
//! wrappers. Runtime dispatch picks the widest instruction set the host
//! supports (overridable via `SACO_SIMD`, see [`Mode`]).
//!
//! # The determinism contract
//!
//! The lane structure is part of the kernel's *definition*, not its
//! execution width: a dot product always uses [`LANES`] = 4 partial sums
//! reduced as `(acc0 + acc1) + (acc2 + acc3) + tail`, a dense Gram entry is
//! always the left-to-right fold of [`CHUNK`] = 64-row partial sums, and the
//! sparse scatter-dot always keeps one accumulator chain per scattered
//! column. Because the AVX2/AVX-512 builds execute the *same* IEEE-754
//! operations in the *same* association (vectorization only reschedules
//! independent lanes, it never reassociates a chain, and fused
//! multiply-add is banned repo-wide — `scripts/shim_guard.sh`), the
//! scalar and wide paths are **bitwise identical** by construction. The
//! proptests in `tests/proptests.rs` pin this for every kernel, including
//! ragged tails.
//!
//! The same argument makes the cache-tile size a pure throughput knob: any
//! row-panel height that is a multiple of [`CHUNK`] folds the identical
//! chunk partials in the identical order, so the L2-probed panel height
//! ([`gram_tile_rows`], override `SACO_L2_KB`) cannot change a bit.
//!
//! This module is the only place in the numeric crates allowed to spell
//! out raw product-accumulate inner loops; `vecops`, `dense::gram*` and
//! `gram` route through it (enforced by `scripts/shim_guard.sh`). One
//! deliberate exception: [`crate::SparseSlice::dot_dense`] stays a single
//! scalar chain — its gather pattern defeats vectorization (measured
//! slower with lane splitting), and its single-accumulator order is what
//! the interleaved kernel below reproduces per lane.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Accumulator lanes of the BLAS-1 reductions ([`dot`], [`nrm2_sq`]).
pub const LANES: usize = 4;

/// Canonical row-chunk length of the dense Gram kernel: every `G[a][b]`
/// is the left-to-right fold of per-64-row partial sums, whatever the
/// cache tiling. Tile heights are constrained to multiples of this.
pub const CHUNK: usize = 64;

/// Interleaved scatter lanes of the sparse sampled-Gram kernel: that many
/// selected columns are scattered side by side so one streaming pass over
/// a partner column's nonzeros produces that many Gram entries with
/// contiguous (cache-line-wide) loads instead of gathers.
pub const SPARSE_LANES: usize = 8;

/// Dense Gram micro-tile height (rows of `G` per register block).
pub const TILE_MR: usize = 4;

/// Dense Gram micro-tile width (columns of `G` per register block).
pub const TILE_NR: usize = 8;

// ---------------------------------------------------------------------------
// Mode / ISA selection
// ---------------------------------------------------------------------------

/// Execution-width policy, resolved from `SACO_SIMD` (or [`set_mode`]).
///
/// A pure throughput knob: all modes produce bitwise-identical results
/// (the lane-reduction contract above). `Scalar` forces the portable
/// build of every kernel; `Wide`/`Auto` use the widest detected ISA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Use the widest instruction set the host supports (default).
    Auto,
    /// Force the portable (baseline-codegen) build of every kernel.
    Scalar,
    /// Explicitly request the wide build (same behavior as `Auto`; the
    /// distinct name exists so CI can pin both sides of the identity).
    Wide,
}

// 0 = unresolved, 1 = Auto, 2 = Scalar, 3 = Wide.
static MODE: AtomicU8 = AtomicU8::new(0);
// 0 = unresolved, 1 = Portable, 2 = Avx2, 3 = Avx512.
static DETECTED: AtomicU8 = AtomicU8::new(0);

/// The active execution-width policy (cached; first call reads
/// `SACO_SIMD=auto|scalar|wide`, unknown values fall back to `auto`).
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => {
            let m = match std::env::var("SACO_SIMD").as_deref() {
                Ok("scalar") => Mode::Scalar,
                Ok("wide") => Mode::Wide,
                _ => Mode::Auto,
            };
            set_mode(m);
            m
        }
        2 => Mode::Scalar,
        3 => Mode::Wide,
        _ => Mode::Auto,
    }
}

/// Override the execution-width policy in-process (tests and benchmarks
/// compare `Scalar` vs `Wide` without re-execing). Safe to flip at any
/// time: the mode never changes results, only instruction selection.
pub fn set_mode(m: Mode) {
    let v = match m {
        Mode::Auto => 1,
        Mode::Scalar => 2,
        Mode::Wide => 3,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Label for telemetry/gauges: `"auto"`, `"scalar"` or `"wide"`.
pub fn mode_label() -> &'static str {
    match mode() {
        Mode::Auto => "auto",
        Mode::Scalar => "scalar",
        Mode::Wide => "wide",
    }
}

/// Instruction set a kernel dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Portable build (baseline codegen — SSE2 on x86-64).
    Portable,
    /// AVX2 build (4 × f64 registers).
    Avx2,
    /// AVX-512F build (8 × f64 registers).
    Avx512,
}

fn detected() -> Isa {
    match DETECTED.load(Ordering::Relaxed) {
        0 => {
            #[allow(unused_mut)]
            let mut isa = Isa::Portable;
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    isa = Isa::Avx512;
                } else if std::arch::is_x86_feature_detected!("avx2") {
                    isa = Isa::Avx2;
                }
                // Undocumented tuning cap (benchmarking aid): never
                // *enables* anything detection didn't confirm.
                match std::env::var("SACO_SIMD_ISA").as_deref() {
                    Ok("avx2") if isa == Isa::Avx512 => isa = Isa::Avx2,
                    Ok("portable") => isa = Isa::Portable,
                    _ => {}
                }
            }
            DETECTED.store(
                match isa {
                    Isa::Portable => 1,
                    Isa::Avx2 => 2,
                    Isa::Avx512 => 3,
                },
                Ordering::Relaxed,
            );
            isa
        }
        2 => Isa::Avx2,
        3 => Isa::Avx512,
        _ => Isa::Portable,
    }
}

/// The instruction set the current [`mode`] resolves to on this host.
pub fn active_isa() -> Isa {
    match mode() {
        Mode::Scalar => Isa::Portable,
        Mode::Auto | Mode::Wide => detected(),
    }
}

/// The sparse scatter-dot kernel's ISA preference: AVX2 even on AVX-512
/// hosts — the interleaved 8-lane pass measured *faster* under AVX2
/// (512-bit loads gain nothing on a cache-line-bound kernel and the
/// downclocked port layout loses). Purely a throughput choice: every ISA
/// build is bitwise identical.
fn sparse_isa() -> Isa {
    match active_isa() {
        Isa::Avx512 => Isa::Avx2,
        isa => isa,
    }
}

/// ISA preference of the BLAS-1 *reduction* kernels ([`dot`],
/// [`nrm2_sq`]): portable, even on AVX hosts, under `Auto`. The fixed
/// 4-chain association is latency-bound, and packing the four
/// accumulator chains into one wide register fuses them into a single
/// dependency chain — measurably slower at every vector size than the
/// portable build's two independent SSE chains. A wider schedule would
/// need more chains, which the determinism contract forbids. Explicit
/// `Wide` still dispatches the wide builds (bitwise identical — that
/// path is how CI pins the identity).
fn reduce_isa() -> Isa {
    match mode() {
        Mode::Wide => detected(),
        Mode::Auto | Mode::Scalar => Isa::Portable,
    }
}

/// Hardware f64 lanes of the active ISA (2 for the portable SSE2
/// baseline, 4 for AVX2, 8 for AVX-512) — recorded in `kernel.simd.*`
/// gauges. Distinct from [`LANES`], the fixed *accumulator* lane count
/// that defines the reduction order.
pub fn effective_lanes() -> usize {
    match active_isa() {
        Isa::Portable => 2,
        Isa::Avx2 => 4,
        Isa::Avx512 => 8,
    }
}

/// Defines a kernel once and re-compiles it behind AVX2/AVX-512 target
/// features. The wrapper bodies are the portable function, so all three
/// builds share one definition — wider builds cannot diverge.
macro_rules! widened {
    (fn $name:ident / $avx2:ident / $avx512:ident ($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)? $body:block) => {
        #[inline(always)]
        fn $name($($arg: $ty),*) $(-> $ret)? $body

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) $(-> $ret)? { $name($($arg),*) }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512($($arg: $ty),*) $(-> $ret)? { $name($($arg),*) }
    };
}

/// Dispatches to the requested build of a `widened!` kernel.
///
/// Safety of the `unsafe` calls: the `Isa` value comes from
/// [`detected()`], which only reports features `is_x86_feature_detected!`
/// confirmed on this host.
macro_rules! dispatch {
    ($isa:expr, $name:ident / $avx2:ident / $avx512:ident ($($arg:expr),* $(,)?)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            match $isa {
                Isa::Avx512 => unsafe { $avx512($($arg),*) },
                Isa::Avx2 => unsafe { $avx2($($arg),*) },
                Isa::Portable => $name($($arg),*),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = $isa;
            $name($($arg),*)
        }
    }};
}

// ---------------------------------------------------------------------------
// BLAS-1 kernels
// ---------------------------------------------------------------------------

widened! {
    fn dot_kernel / dot_avx2 / dot_avx512(x: &[f64], y: &[f64]) -> f64 {
        // Fixed 4-lane partials reduced (0+1)+(2+3)+tail — the historic
        // vecops::dot order, now also the contract every build honors.
        let mut acc = [0.0f64; LANES];
        let chunks = x.len() / LANES;
        for c in 0..chunks {
            let i = LANES * c;
            acc[0] += x[i] * y[i];
            acc[1] += x[i + 1] * y[i + 1];
            acc[2] += x[i + 2] * y[i + 2];
            acc[3] += x[i + 3] * y[i + 3];
        }
        let mut tail = 0.0;
        for i in LANES * chunks..x.len() {
            tail += x[i] * y[i];
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }
}

widened! {
    fn nrm2_sq_kernel / nrm2_sq_avx2 / nrm2_sq_avx512(x: &[f64]) -> f64 {
        let mut acc = [0.0f64; LANES];
        let chunks = x.len() / LANES;
        for c in 0..chunks {
            let i = LANES * c;
            acc[0] += x[i] * x[i];
            acc[1] += x[i + 1] * x[i + 1];
            acc[2] += x[i + 2] * x[i + 2];
            acc[3] += x[i + 3] * x[i + 3];
        }
        let mut tail = 0.0;
        for i in LANES * chunks..x.len() {
            tail += x[i] * x[i];
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }
}

widened! {
    fn axpy_kernel / axpy_avx2 / axpy_avx512(alpha: f64, x: &[f64], y: &mut [f64]) {
        // Elementwise: no reduction, so width cannot matter even in
        // principle — the wide builds exist purely for codegen.
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }
}

widened! {
    fn axpby_kernel / axpby_avx2 / axpby_avx512(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = alpha * xi + beta * *yi;
        }
    }
}

widened! {
    fn scale_kernel / scale_avx2 / scale_avx512(alpha: f64, x: &mut [f64]) {
        for xi in x {
            *xi *= alpha;
        }
    }
}

/// Dot product `xᵀy` with the fixed 4-lane reduction order. Caller
/// validates lengths (`vecops::dot` is the public entry point).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    dispatch!(reduce_isa(), dot_kernel / dot_avx2 / dot_avx512(x, y))
}

/// Squared Euclidean norm with the fixed 4-lane reduction order
/// (bitwise equal to `dot(x, x)`).
#[inline]
pub fn nrm2_sq(x: &[f64]) -> f64 {
    dispatch!(
        reduce_isa(),
        nrm2_sq_kernel / nrm2_sq_avx2 / nrm2_sq_avx512(x)
    )
}

/// `y ← alpha·x + y` (elementwise; lengths validated by the caller).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    dispatch!(
        active_isa(),
        axpy_kernel / axpy_avx2 / axpy_avx512(alpha, x, y)
    )
}

/// `y ← alpha·x + beta·y` (elementwise; lengths validated by the caller).
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    dispatch!(
        active_isa(),
        axpby_kernel / axpby_avx2 / axpby_avx512(alpha, x, beta, y)
    )
}

/// `x ← alpha·x` (elementwise).
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    dispatch!(
        active_isa(),
        scale_kernel / scale_avx2 / scale_avx512(alpha, x)
    )
}

// ---------------------------------------------------------------------------
// Dense Gram: register-blocked 4×8 micro-tiles over canonical row chunks
// ---------------------------------------------------------------------------

static L2_BYTES: AtomicUsize = AtomicUsize::new(0);

/// The L2 working-set target for dense-Gram row panels, in bytes.
/// Resolution order: `SACO_L2_KB` env override, the sysfs L2 size of
/// cpu0, then a conservative 256 KiB. Cached after the first call.
pub fn l2_target_bytes() -> usize {
    match L2_BYTES.load(Ordering::Relaxed) {
        0 => {
            let bytes = std::env::var("SACO_L2_KB")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map(|kb| kb * 1024)
                .or_else(probe_l2_bytes)
                .unwrap_or(256 * 1024);
            L2_BYTES.store(bytes.max(1), Ordering::Relaxed);
            bytes.max(1)
        }
        b => b,
    }
}

/// Parse `/sys/devices/system/cpu/cpu0/cache/index2/size` (e.g. `"2048K"`).
fn probe_l2_bytes() -> Option<usize> {
    let s = std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index2/size").ok()?;
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1024),
        b'M' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<usize>().ok().map(|n| n * mult)
}

/// Row-panel height for the dense Gram kernel: as many rows of `A` as fit
/// the L2 target, rounded **down to a multiple of [`CHUNK`]** (floored at
/// one chunk) — the constraint that makes the probed tile size incapable
/// of changing results.
pub fn gram_tile_rows(n: usize) -> usize {
    let rows = l2_target_bytes() / (8 * n.max(1));
    let rows = rows.max(CHUNK);
    rows - rows % CHUNK
}

widened! {
    fn gram_upper_kernel / gram_upper_avx2 / gram_upper_avx512(
        data: &[f64],
        m: usize,
        n: usize,
        lo: usize,
        hi: usize,
        out: &mut [f64],
    ) {
        let panel = gram_tile_rows(n);
        let mut p0 = 0;
        while p0 < m {
            let pend = (p0 + panel).min(m);
            let mut a0 = lo;
            while a0 < hi {
                let aw = (hi - a0).min(TILE_MR);
                let mut b0 = a0;
                while b0 < n {
                    let bw = (n - b0).min(TILE_NR);
                    if aw == TILE_MR && bw == TILE_NR {
                        // Full 4×8 register tile: 32 accumulators live in
                        // registers while the panel's rows stream through.
                        let mut c0 = p0;
                        while c0 < pend {
                            let cend = (c0 + CHUNK).min(pend);
                            let mut acc = [[0.0f64; TILE_NR]; TILE_MR];
                            for i in c0..cend {
                                let row = &data[i * n..(i + 1) * n];
                                let va: [f64; TILE_MR] =
                                    row[a0..a0 + TILE_MR].try_into().unwrap();
                                let vb: [f64; TILE_NR] =
                                    row[b0..b0 + TILE_NR].try_into().unwrap();
                                for r in 0..TILE_MR {
                                    for c in 0..TILE_NR {
                                        acc[r][c] += va[r] * vb[c];
                                    }
                                }
                            }
                            for r in 0..TILE_MR {
                                let base = (a0 + r - lo) * n + b0;
                                let dst = &mut out[base..base + TILE_NR];
                                for c in 0..TILE_NR {
                                    dst[c] += acc[r][c];
                                }
                            }
                            c0 = cend;
                        }
                    } else {
                        // Ragged edge: per-entry scalar chains over the
                        // same canonical chunks.
                        let mut c0 = p0;
                        while c0 < pend {
                            let cend = (c0 + CHUNK).min(pend);
                            for r in 0..aw {
                                let a = a0 + r;
                                for c in 0..bw {
                                    let b = b0 + c;
                                    if b < a {
                                        continue;
                                    }
                                    let mut acc = 0.0;
                                    for i in c0..cend {
                                        acc += data[i * n + a] * data[i * n + b];
                                    }
                                    out[(a - lo) * n + b] += acc;
                                }
                            }
                            c0 = cend;
                        }
                    }
                    b0 += bw;
                }
                a0 += aw;
            }
            p0 = pend;
        }
    }
}

/// Accumulate the upper-triangle rows `[lo, hi)` of `G = AᵀA` into the
/// full-width row band `out` (`(hi − lo) × n`, row-major; `out[(a−lo)·n +
/// b] += G[a][b]` for `a ≤ b`). `data` is row-major `m × n`.
///
/// Every entry is the left-to-right fold of canonical [`CHUNK`]-row
/// partial sums, so this is bitwise identical at any band split `[lo,
/// hi)`, any L2 panel height, and any ISA — the property `gram_parallel`
/// and the serial `gram` both rest on. Tiles that straddle the diagonal
/// also touch a few below-diagonal slots of the band; callers read only
/// `b ≥ a` (the mirror pass owns the rest).
pub fn gram_upper_rows(data: &[f64], m: usize, n: usize, lo: usize, hi: usize, out: &mut [f64]) {
    assert!(lo <= hi && hi <= n, "gram_upper_rows: band out of range");
    assert_eq!(data.len(), m * n, "gram_upper_rows: data shape mismatch");
    assert_eq!(
        out.len(),
        (hi - lo) * n,
        "gram_upper_rows: band shape mismatch"
    );
    if lo == hi || n == 0 || m == 0 {
        return;
    }
    dispatch!(
        active_isa(),
        gram_upper_kernel / gram_upper_avx2 / gram_upper_avx512(data, m, n, lo, hi, out)
    )
}

// ---------------------------------------------------------------------------
// Sparse sampled Gram: interleaved multi-column scatter dot
// ---------------------------------------------------------------------------

widened! {
    fn scatter_dot_kernel / scatter_dot_avx2 / scatter_dot_avx512(
        indices: &[usize],
        values: &[f64],
        work: &[f64],
        acc: &mut [f64; SPARSE_LANES],
    ) {
        // One accumulator chain per scattered column: acc[l] follows
        // exactly the single-chain order of SparseSlice::dot_dense
        // against column l's scatter, so each Gram entry is bitwise the
        // one-column-at-a-time kernel's. The interleaved layout turns
        // the old per-entry gather into one contiguous 8-wide load.
        for (&i, &x) in indices.iter().zip(values) {
            let w = &work[SPARSE_LANES * i..SPARSE_LANES * i + SPARSE_LANES];
            for l in 0..SPARSE_LANES {
                acc[l] += x * w[l];
            }
        }
    }
}

/// Sparse dot of one slice against [`SPARSE_LANES`] interleaved scattered
/// columns: `acc[l] += Σ values[k] · work[SPARSE_LANES·indices[k] + l]`,
/// each lane an independent left-to-right chain over `indices` order.
///
/// `work` holds the scattered columns interleaved (`work[L·i + l]` is row
/// `i` of column `l`, 64-byte aligned via [`AlignedBuf`] so the 8-wide
/// row load is one cache line).
#[inline]
pub fn scatter_dot_lanes(
    indices: &[usize],
    values: &[f64],
    work: &[f64],
    acc: &mut [f64; SPARSE_LANES],
) {
    dispatch!(
        sparse_isa(),
        scatter_dot_kernel / scatter_dot_avx2 / scatter_dot_avx512(indices, values, work, acc)
    )
}

// ---------------------------------------------------------------------------
// Aligned scratch
// ---------------------------------------------------------------------------

/// A grow-only, zero-maintained `f64` scratch buffer whose payload starts
/// on a 64-byte boundary, so the sparse kernel's [`SPARSE_LANES`]-wide
/// interleaved row loads are single-cache-line accesses.
///
/// Semantics mirror `GramWorkspace`'s scatter buffer: [`Self::zeroed_to`]
/// grows (zero-filled) and never shrinks, and kernels restore the
/// all-zeros invariant with their un-scatter pass. Implemented as an
/// over-allocated `Vec` plus an element offset — no `unsafe`.
#[derive(Debug, Default)]
pub struct AlignedBuf {
    raw: Vec<f64>,
    off: usize,
    len: usize,
}

impl AlignedBuf {
    /// Empty buffer; storage appears on first [`Self::zeroed_to`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer at exactly `len` elements, 64-byte aligned, preserving
    /// the all-zeros invariant (growth allocates fresh zeroed storage).
    pub fn zeroed_to(&mut self, len: usize) -> &mut [f64] {
        if self.len < len {
            // 64 bytes = 8 f64s: over-allocate one vector's worth for
            // the alignment offset.
            self.raw = vec![0.0; len + 8];
            self.off = self.raw.as_ptr().align_offset(64).min(8);
            self.len = len;
        }
        &mut self.raw[self.off..self.off + len]
    }

    /// Current payload length (high-water mark of [`Self::zeroed_to`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer has ever been sized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the aligned payload.
    pub fn as_slice(&self) -> &[f64] {
        &self.raw[self.off..self.off + self.len]
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        // Re-derive the alignment offset for the fresh allocation; the
        // payload (normally all zeros between kernel calls) is copied.
        let mut c = AlignedBuf::default();
        if self.len > 0 {
            c.zeroed_to(self.len).copy_from_slice(self.as_slice());
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) + seed).sin() * 3.0).collect()
    }

    /// Reference dense Gram: per-entry canonical-chunk fold, no blocking.
    fn gram_ref(data: &[f64], m: usize, n: usize) -> Vec<f64> {
        let mut g = vec![0.0f64; n * n];
        for a in 0..n {
            for b in a..n {
                let mut c0 = 0;
                while c0 < m {
                    let cend = (c0 + CHUNK).min(m);
                    let mut acc = 0.0;
                    for i in c0..cend {
                        acc += data[i * n + a] * data[i * n + b];
                    }
                    g[a * n + b] += acc;
                    c0 = cend;
                }
            }
        }
        g
    }

    fn with_modes<F: FnMut() -> T, T: PartialEq + std::fmt::Debug>(mut f: F) {
        set_mode(Mode::Scalar);
        let scalar = f();
        set_mode(Mode::Wide);
        let wide = f();
        set_mode(Mode::Auto);
        assert_eq!(scalar, wide, "scalar and wide builds disagree");
    }

    #[test]
    fn dot_is_bitwise_across_modes_and_tails() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1000] {
            let x = vec_of(n, 0.1);
            let y = vec_of(n, 2.7);
            with_modes(|| dot(&x, &y).to_bits());
            with_modes(|| nrm2_sq(&x).to_bits());
        }
    }

    #[test]
    fn elementwise_kernels_are_bitwise_across_modes() {
        for n in [0usize, 1, 3, 8, 17, 100] {
            let x = vec_of(n, 1.0);
            let y0 = vec_of(n, 4.0);
            with_modes(|| {
                let mut y = y0.clone();
                axpy(0.3, &x, &mut y);
                axpby(-1.25, &x, 0.5, &mut y);
                scale(1.0 / 3.0, &mut y);
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
        }
    }

    #[test]
    fn gram_upper_rows_matches_canonical_reference_bitwise() {
        for (m, n) in [
            (1usize, 1usize),
            (7, 5),
            (64, 8),
            (65, 9),
            (130, 23),
            (200, 40),
        ] {
            let data = vec_of(m * n, 0.5);
            let reference = gram_ref(&data, m, n);
            with_modes(|| {
                let mut g = vec![0.0f64; n * n];
                gram_upper_rows(&data, m, n, 0, n, &mut g);
                // Compare the upper triangle only (diagonal tiles also
                // touch below-diagonal slots).
                let mut upper = Vec::new();
                for a in 0..n {
                    for b in a..n {
                        upper.push(g[a * n + b].to_bits());
                    }
                }
                upper
            });
            let mut g = vec![0.0f64; n * n];
            gram_upper_rows(&data, m, n, 0, n, &mut g);
            for a in 0..n {
                for b in a..n {
                    assert_eq!(
                        g[a * n + b].to_bits(),
                        reference[a * n + b].to_bits(),
                        "entry ({a},{b}) of {m}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn gram_upper_rows_band_split_is_bitwise_whole() {
        let (m, n) = (97usize, 19usize);
        let data = vec_of(m * n, 3.3);
        let mut whole = vec![0.0f64; n * n];
        gram_upper_rows(&data, m, n, 0, n, &mut whole);
        for split in [1usize, 4, 7, 18] {
            let mut lo = 0;
            while lo < n {
                let hi = (lo + split).min(n);
                let mut band = vec![0.0f64; (hi - lo) * n];
                gram_upper_rows(&data, m, n, lo, hi, &mut band);
                for a in lo..hi {
                    for b in a..n {
                        assert_eq!(
                            band[(a - lo) * n + b].to_bits(),
                            whole[a * n + b].to_bits(),
                            "split {split}, entry ({a},{b})"
                        );
                    }
                }
                lo = hi;
            }
        }
    }

    #[test]
    fn scatter_dot_lanes_matches_per_lane_chains() {
        let rows = 50usize;
        let mut work = vec![0.0f64; SPARSE_LANES * rows];
        for i in 0..rows {
            for l in 0..SPARSE_LANES {
                work[SPARSE_LANES * i + l] = ((i * 7 + l) as f64).cos();
            }
        }
        let indices: Vec<usize> = (0..rows).step_by(3).collect();
        let values: Vec<f64> = indices.iter().map(|&i| (i as f64).sin()).collect();
        with_modes(|| {
            let mut acc = [0.0f64; SPARSE_LANES];
            scatter_dot_lanes(&indices, &values, &work, &mut acc);
            acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        });
        let mut acc = [0.0f64; SPARSE_LANES];
        scatter_dot_lanes(&indices, &values, &work, &mut acc);
        for l in 0..SPARSE_LANES {
            // The per-lane reference is the single-accumulator chain of
            // SparseSlice::dot_dense against lane l's column.
            let mut want = 0.0f64;
            for (&i, &x) in indices.iter().zip(&values) {
                want += x * work[SPARSE_LANES * i + l];
            }
            assert_eq!(acc[l].to_bits(), want.to_bits(), "lane {l}");
        }
    }

    #[test]
    fn tile_rows_is_a_chunk_multiple() {
        for n in [1usize, 8, 64, 256, 4096, 1 << 20] {
            let rows = gram_tile_rows(n);
            assert!(rows >= CHUNK);
            assert_eq!(rows % CHUNK, 0, "n={n}: rows={rows}");
        }
    }

    #[test]
    fn aligned_buf_aligns_grows_and_clones() {
        let mut b = AlignedBuf::new();
        assert!(b.is_empty());
        let s = b.zeroed_to(37);
        assert_eq!(s.len(), 37);
        assert_eq!(s.as_ptr() as usize % 64, 0, "payload not 64-byte aligned");
        s[5] = 2.5;
        // Growth preserves nothing but the invariant; shrink requests
        // return the same storage.
        assert_eq!(b.zeroed_to(10).len(), 10);
        assert_eq!(b.len(), 37);
        assert_eq!(b.as_slice()[5], 2.5);
        let c = b.clone();
        assert_eq!(c.as_slice(), b.as_slice());
        assert_eq!(c.as_slice().as_ptr() as usize % 64, 0);
        let big = b.zeroed_to(1000);
        assert_eq!(big.len(), 1000);
        assert!(big.iter().all(|&v| v == 0.0), "growth must zero-fill");
    }

    #[test]
    fn mode_and_isa_labels_are_consistent() {
        set_mode(Mode::Scalar);
        assert_eq!(mode_label(), "scalar");
        assert_eq!(active_isa(), Isa::Portable);
        assert_eq!(effective_lanes(), 2);
        set_mode(Mode::Wide);
        assert_eq!(mode_label(), "wide");
        set_mode(Mode::Auto);
        assert_eq!(mode_label(), "auto");
        assert!(effective_lanes() >= 2);
    }
}
