//! The phase taxonomy and per-phase accounting tables.
//!
//! Phases mirror the paper's cost model: every unit of simulated time a
//! solver spends is attributed to exactly one phase, so `comm` vs `comp`
//! totals can be reconciled against `mpisim::CostReport` exactly.

/// Where time went. One label per unit of work, chosen to match the
/// α-β-γ cost model's decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Collective and point-to-point message time (α·L + β·W).
    Comm,
    /// General local computation not covered by a finer label.
    Comp,
    /// Proximal / subproblem solves (the s×b dense recurrence).
    Prox,
    /// Column/block sampling and selection bookkeeping.
    Sampling,
    /// Gram-matrix formation (sampled or parallel).
    Gram,
    /// Intra-rank pool-parallel kernel execution (`saco-par` tiles): the
    /// portion of local work run under the worker pool, attributed by
    /// host-side instrumentation (bench harness, `--threads` runs). The
    /// simulators' per-rank charges stay thread-invariant, so this phase
    /// is zero in plain engine reports.
    Par,
    /// Time blocked waiting on slower ranks at a collective.
    Idle,
}

impl Phase {
    /// Every phase, in canonical (serialization) order.
    pub const ALL: [Phase; 7] = [
        Phase::Comm,
        Phase::Comp,
        Phase::Prox,
        Phase::Sampling,
        Phase::Gram,
        Phase::Par,
        Phase::Idle,
    ];

    /// Stable lowercase name used in every emitted format.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Comm => "comm",
            Phase::Comp => "comp",
            Phase::Prox => "prox",
            Phase::Sampling => "sampling",
            Phase::Gram => "gram",
            Phase::Par => "par",
            Phase::Idle => "idle",
        }
    }

    /// Dense index into per-phase arrays; follows [`Phase::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            Phase::Comm => 0,
            Phase::Comp => 1,
            Phase::Prox => 2,
            Phase::Sampling => 3,
            Phase::Gram => 4,
            Phase::Par => 5,
            Phase::Idle => 6,
        }
    }

    /// Parse a stable name back into a phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compact `Copy` snapshot of the three top-level time totals — the
/// shape convergence-trace points carry so per-iteration cost curves can
/// be reconstructed without holding a full table per point.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Communication seconds so far.
    pub comm: f64,
    /// Computation seconds so far (all local-work phases).
    pub comp: f64,
    /// Idle (load-imbalance) seconds so far.
    pub idle: f64,
}

impl PhaseTimes {
    /// Snapshot from explicit totals.
    pub fn new(comm: f64, comp: f64, idle: f64) -> Self {
        PhaseTimes { comm, comp, idle }
    }

    /// Total of the three components.
    pub fn total(&self) -> f64 {
        self.comm + self.comp + self.idle
    }
}

impl From<&PhaseTable> for PhaseTimes {
    fn from(table: &PhaseTable) -> Self {
        PhaseTimes {
            comm: table.comm_time(),
            comp: table.comp_time(),
            idle: table.idle_time(),
        }
    }
}

/// Accumulated totals for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStat {
    /// Simulated seconds attributed to this phase.
    pub time: f64,
    /// Number of recorded events (charges / spans).
    pub events: u64,
    /// Words moved while in this phase (nonzero for `Comm` only, in
    /// practice).
    pub words: u64,
    /// Flops executed while in this phase.
    pub flops: u64,
}

impl PhaseStat {
    /// Fold another stat into this one. Associative and commutative:
    /// every field is a sum.
    pub fn merge(&mut self, other: &PhaseStat) {
        self.time += other.time;
        self.events += other.events;
        self.words += other.words;
        self.flops += other.flops;
    }
}

/// Per-phase totals for one attribution unit (usually one rank).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseTable {
    stats: [PhaseStat; 7],
}

impl PhaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute `time` simulated seconds to `phase`.
    pub fn record(&mut self, phase: Phase, time: f64) {
        self.record_full(phase, time, 0, 0);
    }

    /// Attribute time plus data-movement and flop volume to `phase`.
    pub fn record_full(&mut self, phase: Phase, time: f64, words: u64, flops: u64) {
        let s = &mut self.stats[phase.index()];
        s.time += time;
        s.events += 1;
        s.words += words;
        s.flops += flops;
    }

    /// The accumulated stat for one phase.
    pub fn get(&self, phase: Phase) -> &PhaseStat {
        &self.stats[phase.index()]
    }

    /// Simulated seconds attributed to `phase`.
    pub fn time(&self, phase: Phase) -> f64 {
        self.stats[phase.index()].time
    }

    /// Communication time: the `comm` phase alone. Reconciles against
    /// `CostCounters::comm_time`.
    pub fn comm_time(&self) -> f64 {
        self.time(Phase::Comm)
    }

    /// Computation time: every local-work phase (`comp` + `gram` +
    /// `prox` + `sampling` + `par`). Reconciles against
    /// `CostCounters::comp_time`.
    pub fn comp_time(&self) -> f64 {
        self.time(Phase::Comp)
            + self.time(Phase::Gram)
            + self.time(Phase::Prox)
            + self.time(Phase::Sampling)
            + self.time(Phase::Par)
    }

    /// Idle (load-imbalance) time.
    pub fn idle_time(&self) -> f64 {
        self.time(Phase::Idle)
    }

    /// Sum over all phases.
    pub fn total_time(&self) -> f64 {
        self.stats.iter().map(|s| s.time).sum()
    }

    /// Fold another table into this one phase-by-phase. Associative and
    /// commutative, so tables merged across ranks or across engines in
    /// any grouping agree.
    pub fn merge(&mut self, other: &PhaseTable) {
        for (mine, theirs) in self.stats.iter_mut().zip(other.stats.iter()) {
            mine.merge(theirs);
        }
    }

    /// Iterate phases with their stats in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &PhaseStat)> {
        Phase::ALL.iter().map(move |&p| (p, &self.stats[p.index()]))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.events == 0 && s.time == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn indices_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn record_accumulates() {
        let mut t = PhaseTable::new();
        t.record_full(Phase::Comm, 1.5, 100, 0);
        t.record_full(Phase::Comm, 0.5, 50, 0);
        t.record_full(Phase::Gram, 2.0, 0, 1000);
        let comm = t.get(Phase::Comm);
        assert_eq!(comm.time, 2.0);
        assert_eq!(comm.events, 2);
        assert_eq!(comm.words, 150);
        assert_eq!(t.comm_time(), 2.0);
        assert_eq!(t.comp_time(), 2.0);
        assert_eq!(t.total_time(), 4.0);
    }

    #[test]
    fn comp_time_covers_all_local_phases() {
        let mut t = PhaseTable::new();
        t.record(Phase::Comp, 1.0);
        t.record(Phase::Prox, 2.0);
        t.record(Phase::Sampling, 4.0);
        t.record(Phase::Gram, 8.0);
        t.record(Phase::Par, 0.5);
        t.record(Phase::Comm, 16.0);
        t.record(Phase::Idle, 32.0);
        assert_eq!(t.comp_time(), 15.5);
        assert_eq!(t.comm_time(), 16.0);
        assert_eq!(t.idle_time(), 32.0);
    }

    #[test]
    fn merge_is_fieldwise_sum() {
        let mut a = PhaseTable::new();
        a.record_full(Phase::Comm, 1.0, 10, 0);
        let mut b = PhaseTable::new();
        b.record_full(Phase::Comm, 2.0, 20, 0);
        b.record_full(Phase::Idle, 0.5, 0, 0);
        a.merge(&b);
        assert_eq!(a.get(Phase::Comm).time, 3.0);
        assert_eq!(a.get(Phase::Comm).words, 30);
        assert_eq!(a.get(Phase::Comm).events, 2);
        assert_eq!(a.idle_time(), 0.5);
    }
}
