//! Machine-readable run reports: a single stable JSON document per run.
//!
//! Schema `saco-telemetry/v1`:
//!
//! ```json
//! {
//!   "schema": "saco-telemetry/v1",
//!   "meta":     { "<key>": "<string>", ... },
//!   "counters": { "<name>": <u64>, ... },
//!   "gauges":   { "<name>": <f64>, ... },
//!   "histograms": {
//!     "<name>": { "bounds": [..], "counts": [..], "total": <u64>, "sum": <f64> }
//!   },
//!   "ranks": [
//!     { "rank": <usize>,
//!       "phases": { "<phase>": { "time": <f64>, "events": <u64>,
//!                                "words": <u64>, "flops": <u64> }, ... } }
//!   ],
//!   "totals": { "comm_time": <f64>, "comp_time": <f64>,
//!               "idle_time": <f64>, "total_time": <f64> },
//!   "critical_rank": <usize> | null
//! }
//! ```
//!
//! Keys in every object are sorted; phases appear in [`Phase::ALL`]
//! order with zero-valued phases omitted; wall-clock spans are never
//! included. For a fixed registry state the document is byte-identical
//! across runs, so committed baselines diff cleanly.
//!
//! [`Phase::ALL`]: crate::Phase::ALL

use crate::json;
use crate::registry::Registry;

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "saco-telemetry/v1";

/// Render the registry as one `saco-telemetry/v1` JSON document.
pub fn run_report_json(reg: &Registry) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":");
    json::push_str(&mut out, SCHEMA);

    out.push_str(",\"meta\":{");
    for (i, (k, v)) in reg.meta().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(&mut out, k);
        out.push(':');
        json::push_str(&mut out, v);
    }
    out.push('}');

    out.push_str(",\"counters\":{");
    for (i, (k, v)) in reg.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(&mut out, k);
        out.push_str(&format!(":{v}"));
    }
    out.push('}');

    out.push_str(",\"gauges\":{");
    for (i, (k, v)) in reg.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(&mut out, k);
        out.push(':');
        json::push_f64(&mut out, *v);
    }
    out.push('}');

    out.push_str(",\"histograms\":{");
    for (i, (k, h)) in reg.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(&mut out, k);
        out.push_str(":{\"bounds\":");
        json::push_f64_array(&mut out, h.bounds());
        out.push_str(",\"counts\":");
        json::push_u64_array(&mut out, h.counts());
        out.push_str(&format!(",\"total\":{},\"sum\":", h.total()));
        json::push_f64(&mut out, h.sum());
        out.push('}');
    }
    out.push('}');

    out.push_str(",\"ranks\":[");
    for (i, (&rank, table)) in reg.rank_tables().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"rank\":{rank},\"phases\":{{"));
        let mut first = true;
        for (phase, stat) in table.iter() {
            if stat.events == 0 && stat.time == 0.0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{{\"time\":", phase.name()));
            json::push_f64(&mut out, stat.time);
            out.push_str(&format!(
                ",\"events\":{},\"words\":{},\"flops\":{}}}",
                stat.events, stat.words, stat.flops
            ));
        }
        out.push_str("}}");
    }
    out.push(']');

    let totals = reg.phase_totals();
    out.push_str(",\"totals\":{\"comm_time\":");
    json::push_f64(&mut out, totals.comm_time());
    out.push_str(",\"comp_time\":");
    json::push_f64(&mut out, totals.comp_time());
    out.push_str(",\"idle_time\":");
    json::push_f64(&mut out, totals.idle_time());
    out.push_str(",\"total_time\":");
    json::push_f64(&mut out, totals.total_time());
    out.push('}');

    match reg.critical_rank() {
        Some(rank) => out.push_str(&format!(",\"critical_rank\":{rank}")),
        None => out.push_str(",\"critical_rank\":null"),
    }
    out.push('}');
    out
}

/// Write the run report to a file, creating parent directories.
pub fn write_run_report(reg: &Registry, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut doc = run_report_json(reg);
    doc.push('\n');
    std::fs::write(path, doc)
}

/// The flat sections of a run report — what comparison tooling and the
/// bench baseline need to read back. Per-rank tables and histograms are
/// not round-tripped; regenerate those from a live [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Run metadata (`meta` section).
    pub meta: std::collections::BTreeMap<String, String>,
    /// Monotonic counters (`counters` section).
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Point-in-time gauges (`gauges` section).
    pub gauges: std::collections::BTreeMap<String, f64>,
}

impl Summary {
    /// Load the summary back into a registry (meta + counters + gauges).
    pub fn apply_to(&self, reg: &mut Registry) {
        for (k, v) in &self.meta {
            reg.set_meta(k, v);
        }
        for (k, v) in &self.counters {
            reg.counter_add(k, *v);
        }
        for (k, v) in &self.gauges {
            reg.gauge_set(k, *v);
        }
    }
}

/// Parse the `meta`, `counters` and `gauges` sections out of a
/// `saco-telemetry/v1` document. Returns `None` on malformed input or a
/// wrong/missing schema tag. This is a minimal reader for the format
/// [`run_report_json`] emits (it tolerates whitespace and reordered
/// keys), not a general JSON parser.
pub fn parse_summary(doc: &str) -> Option<Summary> {
    let root = match parse::value(&mut parse::Cursor::new(doc))? {
        parse::Val::Obj(fields) => fields,
        _ => return None,
    };
    let mut summary = Summary::default();
    let mut schema_ok = false;
    for (key, val) in root {
        match (key.as_str(), val) {
            ("schema", parse::Val::Str(s)) => schema_ok = s == SCHEMA,
            ("meta", parse::Val::Obj(fields)) => {
                for (k, v) in fields {
                    if let parse::Val::Str(s) = v {
                        summary.meta.insert(k, s);
                    }
                }
            }
            ("counters", parse::Val::Obj(fields)) => {
                for (k, v) in fields {
                    if let parse::Val::Num(x) = v {
                        summary.counters.insert(k, x as u64);
                    }
                }
            }
            ("gauges", parse::Val::Obj(fields)) => {
                for (k, v) in fields {
                    if let parse::Val::Num(x) = v {
                        summary.gauges.insert(k, x);
                    }
                }
            }
            _ => {}
        }
    }
    schema_ok.then_some(summary)
}

/// A tiny recursive-descent JSON reader, just enough for
/// [`parse_summary`].
mod parse {
    // `parse_summary` only consumes Str/Num/Obj, but the reader must
    // still recognise the other shapes to skip past them.
    #[allow(dead_code)]
    pub enum Val {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Val>),
        Obj(Vec<(String, Val)>),
    }

    pub struct Cursor<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl<'a> Cursor<'a> {
        pub fn new(s: &'a str) -> Self {
            Cursor {
                b: s.as_bytes(),
                i: 0,
            }
        }

        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.b.get(self.i).copied()
        }

        fn eat(&mut self, c: u8) -> Option<()> {
            (self.peek()? == c).then(|| self.i += 1)
        }

        fn eat_lit(&mut self, lit: &str) -> Option<()> {
            self.skip_ws();
            let end = self.i + lit.len();
            (self.b.get(self.i..end)? == lit.as_bytes()).then(|| self.i = end)
        }
    }

    pub fn value(c: &mut Cursor) -> Option<Val> {
        match c.peek()? {
            b'{' => {
                c.eat(b'{')?;
                let mut fields = Vec::new();
                if c.peek()? == b'}' {
                    c.eat(b'}')?;
                    return Some(Val::Obj(fields));
                }
                loop {
                    let key = string(c)?;
                    c.eat(b':')?;
                    fields.push((key, value(c)?));
                    match c.peek()? {
                        b',' => c.eat(b',')?,
                        b'}' => break c.eat(b'}')?,
                        _ => return None,
                    }
                }
                Some(Val::Obj(fields))
            }
            b'[' => {
                c.eat(b'[')?;
                let mut items = Vec::new();
                if c.peek()? == b']' {
                    c.eat(b']')?;
                    return Some(Val::Arr(items));
                }
                loop {
                    items.push(value(c)?);
                    match c.peek()? {
                        b',' => c.eat(b',')?,
                        b']' => break c.eat(b']')?,
                        _ => return None,
                    }
                }
                Some(Val::Arr(items))
            }
            b'"' => string(c).map(Val::Str),
            b't' => c.eat_lit("true").map(|_| Val::Bool(true)),
            b'f' => c.eat_lit("false").map(|_| Val::Bool(false)),
            b'n' => c.eat_lit("null").map(|_| Val::Null),
            _ => number(c).map(Val::Num),
        }
    }

    fn string(c: &mut Cursor) -> Option<String> {
        c.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *c.b.get(c.i)? {
                b'"' => {
                    c.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    c.i += 1;
                    match *c.b.get(c.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(c.b.get(c.i + 1..c.i + 5)?).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            c.i += 4;
                        }
                        _ => return None,
                    }
                    c.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let start = c.i;
                    c.i += 1;
                    while c.i < c.b.len() && (c.b[c.i] & 0xc0) == 0x80 {
                        c.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&c.b[start..c.i]).ok()?);
                }
            }
        }
    }

    fn number(c: &mut Cursor) -> Option<f64> {
        c.skip_ws();
        let start = c.i;
        while c
            .b
            .get(c.i)
            .is_some_and(|&ch| ch.is_ascii_digit() || b"+-.eE".contains(&ch))
        {
            c.i += 1;
        }
        std::str::from_utf8(&c.b[start..c.i]).ok()?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.set_meta("solver", "sa-bcd");
        r.set_meta("p", "4");
        r.counter_add("allreduces", 8);
        r.gauge_set("objective", 1.5);
        r.register_histogram("lat", &[1e-6]);
        r.observe("lat", 5e-7);
        r.record_phase(0, Phase::Comm, 0.5, 128, 0);
        r.record_phase(0, Phase::Comp, 2.0, 0, 500);
        r.record_phase(1, Phase::Comp, 3.0, 0, 700);
        r
    }

    #[test]
    fn report_is_byte_stable() {
        let r = sample();
        assert_eq!(run_report_json(&r), run_report_json(&r));
    }

    #[test]
    fn report_has_schema_and_sections() {
        let doc = run_report_json(&sample());
        assert!(doc.starts_with("{\"schema\":\"saco-telemetry/v1\""));
        for needle in [
            "\"meta\":{\"p\":\"4\",\"solver\":\"sa-bcd\"}",
            "\"counters\":{\"allreduces\":8}",
            "\"gauges\":{\"objective\":1.5}",
            "\"bounds\":[0.000001]",
            "\"ranks\":[{\"rank\":0,",
            "\"critical_rank\":1",
        ] {
            assert!(doc.contains(needle), "missing {needle:?} in:\n{doc}");
        }
    }

    #[test]
    fn totals_reconcile_with_phase_tables() {
        let r = sample();
        let doc = run_report_json(&r);
        assert!(doc.contains("\"comm_time\":0.5"));
        assert!(doc.contains("\"comp_time\":5"));
        assert!(doc.contains("\"total_time\":5.5"));
    }

    #[test]
    fn empty_registry_is_valid() {
        let doc = run_report_json(&Registry::new());
        assert!(doc.contains("\"ranks\":[]"));
        assert!(doc.contains("\"critical_rank\":null"));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("saco-telemetry-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/report.json");
        write_run_report(&sample(), &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.ends_with("}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_round_trips_through_the_report() {
        let r = sample();
        let doc = run_report_json(&r);
        let s = parse_summary(&doc).expect("own output must parse");
        assert_eq!(s.meta, *r.meta());
        assert_eq!(s.counters.get("allreduces"), Some(&8));
        assert_eq!(s.gauges.get("objective"), Some(&1.5));

        // Applying the summary to a fresh registry reproduces the flat
        // sections verbatim.
        let mut fresh = Registry::new();
        s.apply_to(&mut fresh);
        let s2 = parse_summary(&run_report_json(&fresh)).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn parse_survives_escapes_and_whitespace() {
        let doc = concat!(
            "{ \"schema\" : \"saco-telemetry/v1\",\n",
            "  \"meta\": { \"label\": \"s=8 \\\"quick\\\" \\u03bb\" },\n",
            "  \"counters\": { \"n\": 3 },\n",
            "  \"gauges\": { \"t\": -1.5e-3 },\n",
            "  \"extra\": [ 1, [true, null], {\"x\": false} ] }"
        );
        let s = parse_summary(doc).unwrap();
        assert_eq!(s.meta["label"], "s=8 \"quick\" \u{3bb}");
        assert_eq!(s.counters["n"], 3);
        assert_eq!(s.gauges["t"], -1.5e-3);
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_schema() {
        assert!(parse_summary("").is_none());
        assert!(
            parse_summary("{\"meta\":{}}").is_none(),
            "missing schema tag"
        );
        assert!(parse_summary("{\"schema\":\"other/v2\",\"meta\":{}}").is_none());
        assert!(parse_summary("{\"schema\":\"saco-telemetry/v1\",").is_none());
        assert!(parse_summary("[1,2,3]").is_none());
    }
}
