//! The metrics registry: counters, gauges, fixed-bucket histograms,
//! per-rank phase tables, and wall-clock spans.
//!
//! Everything deterministic lives in `BTreeMap`s so iteration — and
//! therefore every emitted byte — is ordered and reproducible. Wall-clock
//! measurements are quarantined in their own section ([`Registry::wall`])
//! precisely because they are *not* reproducible; emitters exclude them
//! unless asked.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::phase::{Phase, PhaseTable};

/// A fixed-bucket histogram: bucket `i` counts observations
/// `v <= bounds[i]`; the final implicit bucket counts the rest.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// A histogram with the given strictly increasing upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than `bounds()` (overflow bucket
    /// last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Fold another histogram with identical bounds into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different buckets"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.total += other.total;
    }
}

/// Accumulated wall-clock time for one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WallStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total elapsed wall-clock seconds.
    pub total_secs: f64,
}

/// RAII wall-clock timer: measures from construction to drop and folds
/// the elapsed time into the registry's wall section under its name.
///
/// Obtained from [`Registry::wall_span`]; holds only a shared borrow so
/// the registry's deterministic sections stay usable inside the span.
pub struct WallSpan<'a> {
    sink: &'a RefCell<BTreeMap<String, WallStat>>,
    name: String,
    start: Instant,
}

impl Drop for WallSpan<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let mut wall = self.sink.borrow_mut();
        let stat = wall.entry(std::mem::take(&mut self.name)).or_default();
        stat.count += 1;
        stat.total_secs += elapsed;
    }
}

/// The metrics registry. One per attribution domain — typically one per
/// simulated rank, merged into a run-level registry afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    meta: BTreeMap<String, String>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    ranks: BTreeMap<usize, PhaseTable>,
    wall: RefCell<BTreeMap<String, WallStat>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a key/value annotation (solver name, seed, P, s, …).
    pub fn set_meta(&mut self, key: &str, value: impl std::fmt::Display) {
        self.meta.insert(key.to_string(), value.to_string());
    }

    /// The annotations, ordered by key.
    pub fn meta(&self) -> &BTreeMap<String, String> {
        &self.meta
    }

    /// Add `delta` to a monotone counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        // get_mut first: no String allocation on the hot (existing) path
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current counter value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, ordered by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauges, ordered by name.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// Register a fixed-bucket histogram. Idempotent for identical
    /// bounds; panics on a bounds mismatch (that would corrupt merges).
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) {
        match self.histograms.get(name) {
            Some(existing) => assert_eq!(
                existing.bounds(),
                bounds,
                "histogram {name:?} re-registered with different buckets"
            ),
            None => {
                self.histograms
                    .insert(name.to_string(), Histogram::new(bounds));
            }
        }
    }

    /// Record an observation into a registered histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram {name:?} not registered"))
            .observe(value);
    }

    /// All histograms, ordered by name.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// The phase table for `rank`, created empty on first touch.
    pub fn phases_mut(&mut self, rank: usize) -> &mut PhaseTable {
        self.ranks.entry(rank).or_default()
    }

    /// The phase table for `rank`, if any time was attributed to it.
    pub fn phases(&self, rank: usize) -> Option<&PhaseTable> {
        self.ranks.get(&rank)
    }

    /// Every rank's phase table, ordered by rank.
    pub fn rank_tables(&self) -> &BTreeMap<usize, PhaseTable> {
        &self.ranks
    }

    /// Attribute simulated time (plus volume) to a phase of a rank.
    pub fn record_phase(&mut self, rank: usize, phase: Phase, time: f64, words: u64, flops: u64) {
        self.phases_mut(rank).record_full(phase, time, words, flops);
    }

    /// All ranks folded into a single table.
    pub fn phase_totals(&self) -> PhaseTable {
        let mut total = PhaseTable::new();
        for table in self.ranks.values() {
            total.merge(table);
        }
        total
    }

    /// The critical rank: highest `comp_time`, ties toward the highest
    /// rank index — the same rule `mpisim::run_report` uses to pick the
    /// critical path, so the two reports name the same rank.
    pub fn critical_rank(&self) -> Option<usize> {
        self.ranks
            .iter()
            .max_by(|(i, a), (j, b)| {
                a.comp_time()
                    .partial_cmp(&b.comp_time())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(i.cmp(j))
            })
            .map(|(&rank, _)| rank)
    }

    /// Start an RAII wall-clock span. The elapsed time lands in the wall
    /// section — never in the deterministic phase tables.
    pub fn wall_span(&self, name: &str) -> WallSpan<'_> {
        WallSpan {
            sink: &self.wall,
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Snapshot of the wall section, ordered by span name.
    pub fn wall(&self) -> BTreeMap<String, WallStat> {
        self.wall.borrow().clone()
    }

    /// Fold another registry into this one. Counters, histograms, phase
    /// tables and wall stats add; gauges take the other side's value
    /// (latest-wins); meta keys from `other` overwrite. Counter/phase
    /// merging is associative and commutative, so per-rank registries
    /// can be combined in any order or grouping.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.meta {
            self.meta.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (&rank, table) in &other.ranks {
            self.ranks.entry(rank).or_default().merge(table);
        }
        let other_wall = other.wall.borrow();
        let mut wall = self.wall.borrow_mut();
        for (k, stat) in other_wall.iter() {
            let mine = wall.entry(k.clone()).or_default();
            mine.count += stat.count;
            mine.total_secs += stat.total_secs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter("iters"), 0);
        r.counter_add("iters", 3);
        r.counter_add("iters", 4);
        assert_eq!(r.counter("iters"), 7);
    }

    #[test]
    fn gauges_latest_wins() {
        let mut r = Registry::new();
        assert_eq!(r.gauge("obj"), None);
        r.gauge_set("obj", 2.5);
        r.gauge_set("obj", 1.25);
        assert_eq!(r.gauge("obj"), Some(1.25));
    }

    #[test]
    fn histogram_buckets_observe_correctly() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 100.0] {
            h.observe(v);
        }
        // <=1.0: {0.5, 1.0}; <=10.0: {2.0}; overflow: {100.0}
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum(), 103.5);
    }

    #[test]
    fn histogram_merge_requires_same_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let mut b = Histogram::new(&[1.0]);
        a.observe(0.5);
        b.observe(2.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn observe_unregistered_panics() {
        Registry::new().observe("missing", 1.0);
    }

    #[test]
    fn phase_recording_and_critical_rank() {
        let mut r = Registry::new();
        r.record_phase(0, Phase::Comp, 2.0, 0, 100);
        r.record_phase(1, Phase::Comp, 5.0, 0, 200);
        r.record_phase(2, Phase::Comp, 5.0, 0, 200);
        r.record_phase(2, Phase::Comm, 1.0, 64, 0);
        // ranks 1 and 2 tie on comp; the rule picks the higher index
        assert_eq!(r.critical_rank(), Some(2));
        let totals = r.phase_totals();
        assert_eq!(totals.comp_time(), 12.0);
        assert_eq!(totals.comm_time(), 1.0);
    }

    #[test]
    fn wall_span_records_on_drop() {
        let r = Registry::new();
        {
            let _outer = r.wall_span("solve");
            let _inner = r.wall_span("solve");
        }
        let wall = r.wall();
        assert_eq!(wall["solve"].count, 2);
        assert!(wall["solve"].total_secs >= 0.0);
    }

    #[test]
    fn merge_combines_every_section() {
        let mut a = Registry::new();
        a.set_meta("solver", "sa-accbcd");
        a.counter_add("iters", 10);
        a.gauge_set("obj", 3.0);
        a.register_histogram("lat", &[1.0]);
        a.observe("lat", 0.5);
        a.record_phase(0, Phase::Comm, 1.0, 8, 0);

        let mut b = Registry::new();
        b.counter_add("iters", 5);
        b.gauge_set("obj", 2.0);
        b.register_histogram("lat", &[1.0]);
        b.observe("lat", 4.0);
        b.record_phase(0, Phase::Comm, 2.0, 16, 0);
        b.record_phase(1, Phase::Idle, 0.25, 0, 0);
        {
            let _s = b.wall_span("solve");
        }

        a.merge(&b);
        assert_eq!(a.counter("iters"), 15);
        assert_eq!(a.gauge("obj"), Some(2.0));
        assert_eq!(a.histograms()["lat"].counts(), &[1, 1]);
        assert_eq!(a.phases(0).unwrap().comm_time(), 3.0);
        assert_eq!(a.phases(1).unwrap().idle_time(), 0.25);
        assert_eq!(a.wall()["solve"].count, 1);
        assert_eq!(a.meta()["solver"], "sa-accbcd");
    }

    #[test]
    fn merge_order_does_not_matter_for_deterministic_sections() {
        let make = |n: u64, t: f64| {
            let mut r = Registry::new();
            r.counter_add("c", n);
            r.record_phase(0, Phase::Gram, t, 0, n);
            r
        };
        let (x, y, z) = (make(1, 1.0), make(2, 2.0), make(4, 4.0));

        let mut left = Registry::new();
        left.merge(&x);
        left.merge(&y);
        left.merge(&z);

        let mut xy = Registry::new();
        xy.merge(&y);
        xy.merge(&x);
        let mut right = Registry::new();
        right.merge(&z);
        right.merge(&xy);

        assert_eq!(left.counter("c"), right.counter("c"));
        assert_eq!(left.phase_totals(), right.phase_totals());
    }
}
