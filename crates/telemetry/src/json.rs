//! Minimal deterministic JSON writing helpers (no external deps).

/// Append a JSON string literal (with escaping) to `out`.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an f64 as a JSON number. Rust's shortest-roundtrip `Display`
/// is deterministic across runs and platforms; non-finite values (not
/// representable in JSON) become `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Append a `[a,b,...]` array of f64s.
pub(crate) fn push_f64_array(out: &mut String, vals: &[f64]) {
    out.push('[');
    for (i, &v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v);
    }
    out.push(']');
}

/// Append a `[a,b,...]` array of u64s.
pub(crate) fn push_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, &v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_format() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        s.push(' ');
        push_f64(&mut s, 2.0);
        s.push(' ');
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "1.5 2 null");
    }

    #[test]
    fn arrays_format() {
        let mut s = String::new();
        push_f64_array(&mut s, &[0.5, 1.0]);
        s.push(' ');
        push_u64_array(&mut s, &[1, 2, 3]);
        assert_eq!(s, "[0.5,1] [1,2,3]");
    }
}
