//! saco-telemetry: structured observability for the SACO workspace.
//!
//! Zero-dependency metrics layer giving every engine (the thread-backed
//! `ThreadMachine`, the analytic `VirtualCluster`, and the sequential
//! solvers) one vocabulary for *where time went*:
//!
//! * a deterministic [`Registry`] of counters, gauges and fixed-bucket
//!   [`Histogram`]s, all `BTreeMap`-ordered so emitted bytes are
//!   reproducible;
//! * a [`Phase`] taxonomy mirroring the paper's cost model (`comm`,
//!   `comp`, `prox`, `sampling`, `gram`, `idle`) with per-rank
//!   [`PhaseTable`]s whose `merge` is associative and commutative —
//!   per-rank registries combine in any order;
//! * RAII wall-clock spans ([`Registry::wall_span`]) kept in a separate
//!   nondeterministic section that emitters exclude by default;
//! * pluggable emitters ([`JsonLines`], [`Csv`], [`Table`]) and a stable
//!   machine-readable run-report schema ([`report::SCHEMA`]).
//!
//! The accounting identities the rest of the workspace relies on:
//! `PhaseTable::comm_time()` equals `CostCounters::comm_time` and
//! `PhaseTable::comp_time()` (= comp + gram + prox + sampling) equals
//! `CostCounters::comp_time` for the same run, and
//! [`Registry::critical_rank`] picks the same rank as
//! `mpisim::ThreadMachine::run_report`.

#![warn(missing_docs)]

mod emit;
mod json;
mod phase;
mod registry;
pub mod report;

pub use emit::{Csv, Emitter, JsonLines, Table};
pub use phase::{Phase, PhaseStat, PhaseTable, PhaseTimes};
pub use registry::{Histogram, Registry, WallSpan, WallStat};
pub use report::{run_report_json, write_run_report};
