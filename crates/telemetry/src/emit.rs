//! Pluggable emitters: JSON-lines, CSV, and a human-readable table.
//!
//! Every emitter walks the registry's `BTreeMap`-backed sections in key
//! order, so for a given registry state the output is byte-identical
//! across runs. Wall-clock spans are excluded by default because they
//! are the one nondeterministic section; opt in with `with_wall(true)`
//! when eyeballing host timings.

use crate::json;
use crate::registry::Registry;

/// Serialize a registry snapshot to a writer.
pub trait Emitter {
    /// Write the whole registry.
    fn emit(&self, reg: &Registry, out: &mut dyn std::io::Write) -> std::io::Result<()>;

    /// Convenience: emit into a `String`.
    fn emit_string(&self, reg: &Registry) -> String
    where
        Self: Sized,
    {
        let mut buf = Vec::new();
        self.emit(reg, &mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("emitters produce UTF-8")
    }
}

/// One JSON object per line; `kind` discriminates the record type.
#[derive(Clone, Copy, Debug, Default)]
pub struct JsonLines {
    include_wall: bool,
}

impl JsonLines {
    /// JSONL with wall-clock spans excluded (the deterministic default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Include the nondeterministic wall-clock section.
    pub fn with_wall(mut self, include: bool) -> Self {
        self.include_wall = include;
        self
    }
}

impl Emitter for JsonLines {
    fn emit(&self, reg: &Registry, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut line = String::new();
        for (k, v) in reg.meta() {
            line.clear();
            line.push_str("{\"kind\":\"meta\",\"key\":");
            json::push_str(&mut line, k);
            line.push_str(",\"value\":");
            json::push_str(&mut line, v);
            line.push('}');
            writeln!(out, "{line}")?;
        }
        for (k, v) in reg.counters() {
            line.clear();
            line.push_str("{\"kind\":\"counter\",\"name\":");
            json::push_str(&mut line, k);
            line.push_str(&format!(",\"value\":{v}}}"));
            writeln!(out, "{line}")?;
        }
        for (k, v) in reg.gauges() {
            line.clear();
            line.push_str("{\"kind\":\"gauge\",\"name\":");
            json::push_str(&mut line, k);
            line.push_str(",\"value\":");
            json::push_f64(&mut line, *v);
            line.push('}');
            writeln!(out, "{line}")?;
        }
        for (k, h) in reg.histograms() {
            line.clear();
            line.push_str("{\"kind\":\"histogram\",\"name\":");
            json::push_str(&mut line, k);
            line.push_str(",\"bounds\":");
            json::push_f64_array(&mut line, h.bounds());
            line.push_str(",\"counts\":");
            json::push_u64_array(&mut line, h.counts());
            line.push_str(&format!(",\"total\":{},\"sum\":", h.total()));
            json::push_f64(&mut line, h.sum());
            line.push('}');
            writeln!(out, "{line}")?;
        }
        for (&rank, table) in reg.rank_tables() {
            for (phase, stat) in table.iter() {
                if stat.events == 0 && stat.time == 0.0 {
                    continue;
                }
                line.clear();
                line.push_str(&format!(
                    "{{\"kind\":\"phase\",\"rank\":{rank},\"phase\":\"{}\",\"time\":",
                    phase.name()
                ));
                json::push_f64(&mut line, stat.time);
                line.push_str(&format!(
                    ",\"events\":{},\"words\":{},\"flops\":{}}}",
                    stat.events, stat.words, stat.flops
                ));
                writeln!(out, "{line}")?;
            }
        }
        if self.include_wall {
            for (k, stat) in reg.wall() {
                line.clear();
                line.push_str("{\"kind\":\"wall\",\"name\":");
                json::push_str(&mut line, &k);
                line.push_str(&format!(",\"count\":{},\"total_secs\":", stat.count));
                json::push_f64(&mut line, stat.total_secs);
                line.push('}');
                writeln!(out, "{line}")?;
            }
        }
        Ok(())
    }
}

/// Flat CSV: `kind,key,rank,phase,value,events,words,flops`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Csv {
    include_wall: bool,
}

impl Csv {
    /// CSV with wall-clock spans excluded (the deterministic default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Include the nondeterministic wall-clock section.
    pub fn with_wall(mut self, include: bool) -> Self {
        self.include_wall = include;
        self
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl Emitter for Csv {
    fn emit(&self, reg: &Registry, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        writeln!(out, "kind,key,rank,phase,value,events,words,flops")?;
        for (k, v) in reg.meta() {
            writeln!(out, "meta,{},,,{},,,", csv_field(k), csv_field(v))?;
        }
        for (k, v) in reg.counters() {
            writeln!(out, "counter,{},,,{v},,,", csv_field(k))?;
        }
        for (k, v) in reg.gauges() {
            writeln!(out, "gauge,{},,,{v},,,", csv_field(k))?;
        }
        for (k, h) in reg.histograms() {
            // one row per bucket; key gets a "<=bound" / ">bound" suffix
            let bounds = h.bounds();
            for (i, &count) in h.counts().iter().enumerate() {
                let label = if i < bounds.len() {
                    format!("{}[le={}]", k, bounds[i])
                } else if let Some(last) = bounds.last() {
                    format!("{k}[gt={last}]")
                } else {
                    format!("{k}[all]")
                };
                writeln!(out, "histogram,{},,,{count},,,", csv_field(&label))?;
            }
        }
        for (&rank, table) in reg.rank_tables() {
            for (phase, stat) in table.iter() {
                if stat.events == 0 && stat.time == 0.0 {
                    continue;
                }
                writeln!(
                    out,
                    "phase,,{rank},{},{},{},{},{}",
                    phase.name(),
                    stat.time,
                    stat.events,
                    stat.words,
                    stat.flops
                )?;
            }
        }
        if self.include_wall {
            for (k, stat) in reg.wall() {
                writeln!(
                    out,
                    "wall,{},,,{},{},,",
                    csv_field(&k),
                    stat.total_secs,
                    stat.count
                )?;
            }
        }
        Ok(())
    }
}

/// Aligned human-readable summary for terminals.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table {
    include_wall: bool,
}

impl Table {
    /// Table with wall-clock spans excluded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Include the nondeterministic wall-clock section.
    pub fn with_wall(mut self, include: bool) -> Self {
        self.include_wall = include;
        self
    }
}

impl Emitter for Table {
    fn emit(&self, reg: &Registry, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        if !reg.meta().is_empty() {
            writeln!(out, "== meta ==")?;
            for (k, v) in reg.meta() {
                writeln!(out, "  {k:<24} {v}")?;
            }
        }
        if !reg.counters().is_empty() {
            writeln!(out, "== counters ==")?;
            for (k, v) in reg.counters() {
                writeln!(out, "  {k:<24} {v:>16}")?;
            }
        }
        if !reg.gauges().is_empty() {
            writeln!(out, "== gauges ==")?;
            for (k, v) in reg.gauges() {
                writeln!(out, "  {k:<24} {v:>16.6e}")?;
            }
        }
        if !reg.histograms().is_empty() {
            writeln!(out, "== histograms ==")?;
            for (k, h) in reg.histograms() {
                writeln!(out, "  {k} (n={}, sum={:.6e})", h.total(), h.sum())?;
                for (i, &count) in h.counts().iter().enumerate() {
                    let label = if i < h.bounds().len() {
                        format!("<= {}", h.bounds()[i])
                    } else {
                        "overflow".to_string()
                    };
                    writeln!(out, "    {label:<16} {count:>12}")?;
                }
            }
        }
        if !reg.rank_tables().is_empty() {
            writeln!(out, "== phases ==")?;
            writeln!(
                out,
                "  {:>5} {:>9} {:>14} {:>10} {:>14} {:>16}",
                "rank", "phase", "time", "events", "words", "flops"
            )?;
            for (&rank, table) in reg.rank_tables() {
                for (phase, stat) in table.iter() {
                    if stat.events == 0 && stat.time == 0.0 {
                        continue;
                    }
                    writeln!(
                        out,
                        "  {rank:>5} {:>9} {:>14.6e} {:>10} {:>14} {:>16}",
                        phase.name(),
                        stat.time,
                        stat.events,
                        stat.words,
                        stat.flops
                    )?;
                }
            }
            let totals = reg.phase_totals();
            writeln!(
                out,
                "  total: comm {:.6e}  comp {:.6e}  idle {:.6e}",
                totals.comm_time(),
                totals.comp_time(),
                totals.idle_time()
            )?;
            if let Some(critical) = reg.critical_rank() {
                writeln!(out, "  critical rank: {critical}")?;
            }
        }
        if self.include_wall {
            let wall = reg.wall();
            if !wall.is_empty() {
                writeln!(out, "== wall (host clock; nondeterministic) ==")?;
                for (k, stat) in wall {
                    writeln!(
                        out,
                        "  {k:<24} {:>10} spans {:>14.6}s",
                        stat.count, stat.total_secs
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.set_meta("solver", "sa-accbcd");
        r.counter_add("outer_iters", 12);
        r.gauge_set("objective", 0.5);
        r.register_histogram("msg_words", &[64.0, 4096.0]);
        r.observe("msg_words", 32.0);
        r.observe("msg_words", 100000.0);
        r.record_phase(0, Phase::Comm, 1.5, 96, 0);
        r.record_phase(0, Phase::Gram, 3.0, 0, 1_000);
        r.record_phase(1, Phase::Idle, 0.25, 0, 0);
        r
    }

    #[test]
    fn jsonl_is_deterministic_and_excludes_wall_by_default() {
        let r = sample();
        {
            let _span = r.wall_span("host_noise");
        }
        let a = JsonLines::new().emit_string(&r);
        let b = JsonLines::new().emit_string(&r);
        assert_eq!(a, b);
        assert!(!a.contains("wall"));
        assert!(a.contains(r#"{"kind":"counter","name":"outer_iters","value":12}"#));
        assert!(a.contains(r#""phase":"gram""#));
        let with_wall = JsonLines::new().with_wall(true).emit_string(&r);
        assert!(with_wall.contains(r#""kind":"wall""#));
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let out = JsonLines::new().emit_string(&sample());
        for line in out.lines() {
            assert!(line.starts_with("{\"kind\":\""), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
        }
        assert_eq!(out.lines().count(), 1 + 1 + 1 + 1 + 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let out = Csv::new().emit_string(&sample());
        let mut lines = out.lines();
        assert_eq!(
            lines.next().unwrap(),
            "kind,key,rank,phase,value,events,words,flops"
        );
        assert!(out.contains("counter,outer_iters,,,12,,,"));
        assert!(out.contains("phase,,0,comm,1.5,1,96,0"));
        assert!(out.contains("histogram,msg_words[le=64],,,1,,,"));
        assert!(out.contains("histogram,msg_words[gt=4096],,,1,,,"));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let mut r = Registry::new();
        r.set_meta("note", "a,b\"c");
        let out = Csv::new().emit_string(&r);
        assert!(out.contains("meta,note,,,\"a,b\"\"c\",,,"));
    }

    #[test]
    fn table_mentions_every_section() {
        let out = Table::new().emit_string(&sample());
        for needle in [
            "== meta ==",
            "== counters ==",
            "== gauges ==",
            "== histograms ==",
            "== phases ==",
            "critical rank: 0",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
    }

    #[test]
    fn emitters_agree_on_registry_content() {
        let r = sample();
        let jsonl = JsonLines::new().emit_string(&r);
        let csv = Csv::new().emit_string(&r);
        let table = Table::new().emit_string(&r);
        for needle in [
            "outer_iters",
            "objective",
            "msg_words",
            "comm",
            "gram",
            "idle",
        ] {
            assert!(jsonl.contains(needle));
            assert!(csv.contains(needle));
            assert!(table.contains(needle));
        }
    }
}
