//! Property-based cross-engine tests: for *any* SPMD program made of
//! compute charges and collectives, the thread machine and the virtual
//! cluster must report identical simulated times and counters, and
//! allreduce must actually sum.

use mpisim::{AllreduceAlgo, CostModel, KernelClass, ThreadMachine, VirtualCluster};
use proptest::prelude::*;

/// One step of a random SPMD program.
#[derive(Clone, Debug)]
enum Step {
    /// Per-rank flops = base + rank·slope (deterministic imbalance).
    Compute {
        class: KernelClass,
        base: u64,
        slope: u64,
        ws: u64,
    },
    /// Allreduce of the given payload.
    Allreduce { words: usize },
    /// Barrier.
    Barrier,
}

fn class_strategy() -> impl Strategy<Value = KernelClass> {
    prop_oneof![
        Just(KernelClass::Gemm),
        Just(KernelClass::SparseGemm),
        Just(KernelClass::Dot),
        Just(KernelClass::Vector),
    ]
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (
            class_strategy(),
            0u64..2_000_000,
            0u64..300_000,
            1u64..100_000
        )
            .prop_map(|(class, base, slope, ws)| Step::Compute {
                class,
                base,
                slope,
                ws
            }),
        (1usize..2000).prop_map(|words| Step::Allreduce { words }),
        Just(Step::Barrier),
    ]
}

fn algo_strategy() -> impl Strategy<Value = AllreduceAlgo> {
    prop_oneof![
        Just(AllreduceAlgo::Tree),
        Just(AllreduceAlgo::Rabenseifner),
        (1u64..3000).prop_map(|t| AllreduceAlgo::Auto { threshold_words: t }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any program, any rank count, any allreduce algorithm: the two
    /// engines agree on time and on every counter.
    #[test]
    fn engines_agree_on_random_programs(
        steps in proptest::collection::vec(step_strategy(), 1..20),
        p in 2usize..9,
        algo in algo_strategy(),
    ) {
        let model = CostModel {
            allreduce_algo: algo,
            ..CostModel::cray_xc30()
        };

        let steps_ref = &steps;
        let (_, thread_rep) = ThreadMachine::run_report(p, model, move |comm| {
            for step in steps_ref {
                match *step {
                    Step::Compute { class, base, slope, ws } => {
                        comm.charge_flops(class, base + comm.rank() as u64 * slope, ws);
                    }
                    Step::Allreduce { words } => {
                        let mut buf = vec![1.0; words];
                        comm.allreduce_sum(&mut buf);
                    }
                    Step::Barrier => comm.barrier(),
                }
            }
        });

        let mut vc = VirtualCluster::new(p, model);
        for step in &steps {
            match *step {
                Step::Compute { class, base, slope, ws } => {
                    vc.charge_per_rank_ws(class, |r| (base + r as u64 * slope, ws));
                }
                Step::Allreduce { words } => vc.allreduce(words as u64),
                Step::Barrier => vc.collective(mpisim::CollectiveKind::Barrier, 0),
            }
        }
        let virtual_rep = vc.report();

        let (t, v) = (thread_rep.critical, virtual_rep.critical);
        prop_assert_eq!(t.messages, v.messages, "messages");
        prop_assert_eq!(t.words, v.words, "words");
        prop_assert_eq!(t.flops, v.flops, "flops");
        let scale = virtual_rep.running_time().abs().max(1e-12);
        prop_assert!(
            (thread_rep.running_time() - virtual_rep.running_time()).abs() < 1e-9 * scale,
            "time: thread {} vs virtual {}",
            thread_rep.running_time(),
            virtual_rep.running_time()
        );
        prop_assert!((t.comp_time - v.comp_time).abs() < 1e-9 * scale);
        prop_assert!((t.comm_time - v.comm_time).abs() < 1e-9 * scale);
        prop_assert!((t.idle_time - v.idle_time).abs() < 1e-9 * scale);
    }

    /// Allreduce really sums, for any payload and rank count, and the
    /// result is identical on every rank.
    #[test]
    fn allreduce_sums_correctly(p in 1usize..10, words in 1usize..200, seed in any::<u64>()) {
        let results = ThreadMachine::run(p, CostModel::cray_xc30(), move |comm| {
            let mut rng = xrng::rng_from_seed(seed ^ comm.rank() as u64);
            let buf: Vec<f64> = (0..words).map(|_| rng.next_gaussian()).collect();
            let mut reduced = buf.clone();
            comm.allreduce_sum(&mut reduced);
            (buf, reduced)
        });
        // expected: element-wise sum of all rank contributions
        let mut expect = vec![0.0f64; words];
        for (buf, _) in results.iter().map(|(r, _)| r) {
            for (e, b) in expect.iter_mut().zip(buf) {
                *e += b;
            }
        }
        let first = &results[0].0 .1;
        for ((_, reduced), _) in &results {
            prop_assert_eq!(reduced, first, "ranks disagree");
        }
        for (r, e) in first.iter().zip(&expect) {
            prop_assert!((r - e).abs() < 1e-9 * (1.0 + e.abs()), "{r} vs {e}");
        }
    }

    /// The fused single-buffer allreduce is **bitwise** equal to reducing
    /// each segment with its own blocking allreduce, for any segment
    /// split, at every rank count the solvers use — so packing the Gram
    /// triangle, cross terms, and scalars into one payload can never
    /// change a solver result.
    #[test]
    fn fused_allreduce_is_bitwise_separate_reductions(
        seed in any::<u64>(),
        lens in proptest::collection::vec(1usize..40, 1..5),
    ) {
        for p in [1usize, 2, 4] {
            let total: usize = lens.iter().sum();
            let lens_ref = &lens;
            let results = ThreadMachine::run(p, CostModel::cray_xc30(), move |comm| {
                let mut rng = xrng::rng_from_seed(seed ^ (comm.rank() as u64) << 8);
                let data: Vec<f64> = (0..total).map(|_| rng.next_gaussian()).collect();
                // Fused: one contiguous buffer through the nonblocking path.
                let mut fused = data.clone();
                comm.iallreduce_sum(&mut fused);
                // Separate: one blocking allreduce per segment.
                let mut separate = Vec::with_capacity(total);
                let mut at = 0;
                for &len in lens_ref {
                    let mut seg = data[at..at + len].to_vec();
                    comm.allreduce_sum(&mut seg);
                    separate.extend_from_slice(&seg);
                    at += len;
                }
                (fused, separate)
            });
            for (r, (fused, separate)) in results.iter().map(|(r, _)| r).enumerate() {
                for (i, (f, s)) in fused.iter().zip(separate).enumerate() {
                    prop_assert_eq!(
                        f.to_bits(), s.to_bits(),
                        "p={} rank={} word {}: {} vs {}", p, r, i, f, s
                    );
                }
            }
        }
    }

    /// Allgather concatenates in rank order for any chunk size.
    #[test]
    fn allgather_orders_chunks(p in 1usize..8, chunk in 1usize..32) {
        let results = ThreadMachine::run(p, CostModel::cray_xc30(), move |comm| {
            let local: Vec<f64> = (0..chunk)
                .map(|k| (comm.rank() * chunk + k) as f64)
                .collect();
            comm.allgather(&local)
        });
        let expect: Vec<f64> = (0..p * chunk).map(|i| i as f64).collect();
        for (r, _) in &results {
            prop_assert_eq!(r, &expect);
        }
    }

    /// `CostCounters::merge` commutes: integer fields exactly, float
    /// fields bitwise (f64 addition is commutative).
    #[test]
    fn cost_counters_merge_commutes(a in counters_strategy(), b in counters_strategy()) {
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.messages, ba.messages);
        prop_assert_eq!(ab.words, ba.words);
        prop_assert_eq!(ab.flops, ba.flops);
        prop_assert_eq!(ab.comp_time, ba.comp_time);
        prop_assert_eq!(ab.comm_time, ba.comm_time);
        prop_assert_eq!(ab.idle_time, ba.idle_time);
    }

    /// `CostCounters::merge` associates: integer fields exactly, float
    /// fields to rounding error.
    #[test]
    fn cost_counters_merge_associates(
        a in counters_strategy(),
        b in counters_strategy(),
        c in counters_strategy(),
    ) {
        let mut left = a; // (a ⊕ b) ⊕ c
        left.merge(&b);
        left.merge(&c);
        let mut bc = b; // a ⊕ (b ⊕ c)
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left.messages, right.messages);
        prop_assert_eq!(left.words, right.words);
        prop_assert_eq!(left.flops, right.flops);
        prop_assert!(close(left.comp_time, right.comp_time), "comp {} vs {}", left.comp_time, right.comp_time);
        prop_assert!(close(left.comm_time, right.comm_time), "comm {} vs {}", left.comm_time, right.comm_time);
        prop_assert!(close(left.idle_time, right.idle_time), "idle {} vs {}", left.idle_time, right.idle_time);
    }

    /// `CostReport::merge` inherits both laws, and `default()` is its
    /// identity (so phase reports fold cleanly).
    #[test]
    fn cost_report_merge_laws(
        a in counters_strategy(),
        b in counters_strategy(),
        c in counters_strategy(),
        ranks in 1usize..64,
    ) {
        let report = |critical| mpisim::CostReport { ranks, critical };
        let (ra, rb, rc) = (report(a), report(b), report(c));

        let mut ab = ra;
        ab.merge(&rb);
        let mut ba = rb;
        ba.merge(&ra);
        prop_assert_eq!(ab.critical.flops, ba.critical.flops);
        prop_assert_eq!(ab.critical.comp_time, ba.critical.comp_time);

        let mut left = ra;
        left.merge(&rb);
        left.merge(&rc);
        let mut bc = rb;
        bc.merge(&rc);
        let mut right = ra;
        right.merge(&bc);
        prop_assert_eq!(left.ranks, right.ranks);
        prop_assert_eq!(left.critical.words, right.critical.words);
        prop_assert!(close(left.running_time(), right.running_time()));

        let mut folded = mpisim::CostReport::default();
        folded.merge(&ra);
        prop_assert_eq!(folded.ranks, ra.ranks);
        prop_assert_eq!(folded.critical.flops, ra.critical.flops);
    }

    /// `PhaseTable::merge` (the telemetry sink both engines feed)
    /// commutes and associates the same way.
    #[test]
    fn phase_table_merge_laws(
        a in phase_table_strategy(),
        b in phase_table_strategy(),
        c in phase_table_strategy(),
    ) {
        use mpisim::telemetry::Phase;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for phase in Phase::ALL {
            prop_assert_eq!(ab.get(phase).events, ba.get(phase).events);
            prop_assert_eq!(ab.get(phase).words, ba.get(phase).words);
            prop_assert_eq!(ab.get(phase).flops, ba.get(phase).flops);
            prop_assert_eq!(ab.get(phase).time, ba.get(phase).time);
        }

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        for phase in Phase::ALL {
            prop_assert_eq!(left.get(phase).events, right.get(phase).events);
            prop_assert_eq!(left.get(phase).words, right.get(phase).words);
            prop_assert_eq!(left.get(phase).flops, right.get(phase).flops);
            prop_assert!(
                close(left.get(phase).time, right.get(phase).time),
                "{}: {} vs {}", phase, left.get(phase).time, right.get(phase).time
            );
        }
        prop_assert!(close(left.comm_time(), right.comm_time()));
        prop_assert!(close(left.comp_time(), right.comp_time()));
    }
}

/// Relative closeness for float sums reassociated by a merge.
fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()))
}

fn counters_strategy() -> impl Strategy<Value = mpisim::CostCounters> {
    (
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000_000),
        (0.0f64..1e3, 0.0f64..1e3, 0.0f64..1e3),
    )
        .prop_map(
            |((messages, words, flops), (comp_time, comm_time, idle_time))| mpisim::CostCounters {
                messages,
                words,
                flops,
                comp_time,
                comm_time,
                idle_time,
            },
        )
}

fn phase_table_strategy() -> impl Strategy<Value = mpisim::telemetry::PhaseTable> {
    use mpisim::telemetry::{Phase, PhaseTable};
    proptest::collection::vec(
        (0usize..6, 0.0f64..1e3, 0u64..100_000, 0u64..1_000_000),
        0..12,
    )
    .prop_map(|records| {
        let mut table = PhaseTable::new();
        for (slot, time, words, flops) in records {
            table.record_full(Phase::ALL[slot], time, words, flops);
        }
        table
    })
}
