//! The α-β-γ cost model shared by both execution engines.
//!
//! The paper's Table I counts four quantities along the critical path:
//! flops `F`, memory `M`, latency `L` (number of messages) and bandwidth
//! `W` (words moved). This module turns those counts into simulated seconds
//! and keeps the counters the experiment harness reports.

/// Which collective operation a cost is charged for. All of the paper's
/// solvers communicate exclusively through `Allreduce` (Fig. 1 step 4); the
/// rest exist for completeness of the machine abstraction and for the
/// collectives microbenchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Reduce-to-all (tree reduce + tree broadcast, or recursive doubling).
    Allreduce,
    /// Reduce to a root.
    Reduce,
    /// Broadcast from a root.
    Bcast,
    /// Concatenate contributions on all ranks.
    Allgather,
    /// Concatenate contributions on a root.
    Gather,
    /// Pure synchronization.
    Barrier,
    /// Point-to-point message.
    PointToPoint,
}

/// Number of communication rounds a tree-based collective needs on `p`
/// ranks: `⌈log₂ p⌉` (1 rank ⇒ 0 rounds). Allreduce is reduce+bcast but on
/// a torus-class network the two trees pipeline; like the paper (Table I:
/// latency `O(log P)` per iteration) we charge one `⌈log₂ p⌉` factor.
pub fn collective_rounds(kind: CollectiveKind, p: usize) -> u64 {
    let lg = (usize::BITS - p.max(1).next_power_of_two().leading_zeros() - 1) as u64;
    match kind {
        CollectiveKind::PointToPoint => 1,
        _ => lg,
    }
}

/// Kernel classes with distinct achievable flop rates. The distinction is
/// load-bearing for reproducing Fig. 4e–h: computing the `sµ × sµ` Gram
/// matrix in one (cache-friendlier, BLAS-3-like) kernel runs at a higher
/// rate than `s` separate BLAS-1 dot products, so SA variants gain a
/// *computation* speedup too — until the Gram working set spills the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Dense matrix–matrix (BLAS-3): high arithmetic intensity.
    Gemm,
    /// Batched sparse Gram construction (BLAS-3-like reuse of gathered
    /// columns; the paper: "computing the s² entries of the Gram matrix is
    /// more cache-efficient (uses a BLAS-3 routine)").
    SparseGemm,
    /// Individual sparse/dense dot products (BLAS-1): memory bound.
    Dot,
    /// Element-wise vector updates (axpy, soft-threshold): memory bound.
    Vector,
}

/// Which allreduce algorithm the machine models. Real MPI libraries switch
/// by message size; the choice moves the point where the SA methods'
/// `s²µ²`-word payloads start to hurt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AllreduceAlgo {
    /// Binomial tree (reduce + pipelined broadcast): `⌈log₂P⌉` rounds,
    /// each moving the full payload — latency-optimal, bandwidth-poor.
    /// The default, and what the thread engine physically executes.
    Tree,
    /// Rabenseifner (reduce-scatter + allgather): `2⌈log₂P⌉` rounds but
    /// only `≈2w` total words — bandwidth-optimal for large payloads.
    Rabenseifner,
    /// Switch from `Tree` to `Rabenseifner` above a payload threshold,
    /// like production MPI implementations.
    Auto {
        /// Payload size (words) at which the switch happens.
        threshold_words: u64,
    },
}

/// Cost breakdown of one collective under the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectiveCharge {
    /// Message rounds on the critical path (counts toward `L`).
    pub rounds: u64,
    /// Words moved on the critical path (counts toward `W`).
    pub words_moved: u64,
    /// Simulated seconds.
    pub time: f64,
}

/// Optional two-level network hierarchy: ranks within a node communicate
/// over shared memory (cheap), nodes over the interconnect (expensive).
/// A collective then costs an intra-node phase over `⌈log₂ cores⌉` rounds
/// plus an inter-node phase over `⌈log₂ nodes⌉` rounds — the structure of
/// a real Cray XC30 with 24 cores per node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hierarchy {
    /// Ranks per node.
    pub cores_per_node: usize,
    /// Intra-node latency per round (seconds); typically ~100× below α.
    pub alpha_intra: f64,
    /// Intra-node inverse bandwidth (seconds/word).
    pub beta_intra: f64,
}

/// Machine parameters. Times are seconds; `words` are 8-byte `f64`s.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Latency per message round (seconds).
    pub alpha: f64,
    /// Inverse bandwidth (seconds per word).
    pub beta: f64,
    /// Allreduce algorithm (see [`AllreduceAlgo`]).
    pub allreduce_algo: AllreduceAlgo,
    /// Optional two-level network (see [`Hierarchy`]); `None` models a
    /// flat machine where every round pays the full α.
    pub hierarchy: Option<Hierarchy>,
    /// Achievable flop rate for BLAS-3 class kernels (flops/second).
    pub gemm_rate: f64,
    /// Achievable flop rate for batched sparse Gram kernels.
    pub sparse_gemm_rate: f64,
    /// Achievable flop rate for BLAS-1 dot kernels.
    pub dot_rate: f64,
    /// Achievable flop rate for element-wise vector kernels.
    pub vector_rate: f64,
    /// Fast-memory capacity in words; kernels whose working set exceeds
    /// this run at `rate / cache_penalty`.
    pub cache_words: u64,
    /// Rate divisor applied beyond `cache_words`.
    pub cache_penalty: f64,
}

impl CostModel {
    /// Parameters loosely calibrated to the paper's platform, a Cray XC30
    /// (Aries dragonfly, 24 cores/node): small-message allreduce latency a
    /// few µs per round, effective per-core allreduce bandwidth far below
    /// link speed, ~10 GF/s peak per core with memory-bound BLAS-1 at a
    /// fraction of that. Only the *ratios* matter for the reproduced
    /// shapes; see DESIGN.md §3.
    pub fn cray_xc30() -> Self {
        Self {
            alpha: 8.0e-6,
            beta: 1.0e-8,
            allreduce_algo: AllreduceAlgo::Tree,
            hierarchy: None,
            gemm_rate: 8.0e9,
            sparse_gemm_rate: 2.4e9,
            dot_rate: 1.2e9,
            vector_rate: 2.0e9,
            cache_words: 32 * 1024, // 256 KiB of f64s (L2-class)
            cache_penalty: 3.0,
        }
    }

    /// A "cloud / Spark-like" machine: the paper's §VII notes the SA
    /// methods "would attain greater speedups on frameworks like Spark due
    /// to the large latency costs". Two orders of magnitude more latency,
    /// similar bandwidth.
    pub fn cloud() -> Self {
        Self {
            alpha: 1.0e-3,
            beta: 2.0e-7,
            ..Self::cray_xc30()
        }
    }

    /// The Cray XC30 with its node structure made explicit: 24 ranks per
    /// node over shared memory (~80 ns rounds), nodes over the Aries
    /// interconnect. Collectives get cheaper at fixed P than under the
    /// flat model because only `⌈log₂(P/24)⌉` rounds pay the network α.
    pub fn cray_xc30_hierarchical() -> Self {
        Self {
            hierarchy: Some(Hierarchy {
                cores_per_node: 24,
                alpha_intra: 8.0e-8,
                beta_intra: 1.0e-9,
            }),
            ..Self::cray_xc30()
        }
    }

    /// A zero-communication-cost machine (useful in tests to isolate
    /// computation accounting).
    pub fn free_network() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
            ..Self::cray_xc30()
        }
    }

    /// Flop rate for a kernel class given its working-set size in words.
    pub fn rate(&self, class: KernelClass, working_set_words: u64) -> f64 {
        let base = match class {
            KernelClass::Gemm => self.gemm_rate,
            KernelClass::SparseGemm => self.sparse_gemm_rate,
            KernelClass::Dot => self.dot_rate,
            KernelClass::Vector => self.vector_rate,
        };
        if working_set_words > self.cache_words {
            base / self.cache_penalty
        } else {
            base
        }
    }

    /// Seconds to execute `flops` of the given class with the given
    /// working set.
    pub fn compute_time(&self, class: KernelClass, flops: u64, working_set_words: u64) -> f64 {
        flops as f64 / self.rate(class, working_set_words)
    }

    /// Seconds for one collective of `words` payload on `p` ranks.
    pub fn collective_time(&self, kind: CollectiveKind, p: usize, words: u64) -> f64 {
        self.collective_charge(kind, p, words).time
    }

    /// Full cost breakdown (rounds, words moved, seconds) of one
    /// collective — the single source both engines charge from. Allreduce
    /// honours [`CostModel::allreduce_algo`]; every other collective uses
    /// the tree model.
    pub fn collective_charge(
        &self,
        kind: CollectiveKind,
        p: usize,
        words: u64,
    ) -> CollectiveCharge {
        let lg = collective_rounds(kind, p);
        if lg == 0 {
            return CollectiveCharge {
                rounds: 0,
                words_moved: 0,
                time: 0.0,
            };
        }
        if let Some(h) = self.hierarchy {
            if h.cores_per_node > 1 && p > 1 {
                return self.hierarchical_charge(kind, p, words, h);
            }
        }
        let algo = if kind == CollectiveKind::Allreduce {
            self.allreduce_algo
        } else {
            AllreduceAlgo::Tree
        };
        let use_rabenseifner = match algo {
            AllreduceAlgo::Tree => false,
            AllreduceAlgo::Rabenseifner => true,
            AllreduceAlgo::Auto { threshold_words } => words >= threshold_words,
        };
        if use_rabenseifner {
            // reduce-scatter + allgather: 2·log₂P rounds, ≈2w words total.
            let rounds = 2 * lg;
            let frac = (p as f64 - 1.0) / p as f64;
            let words_moved = (2.0 * words as f64 * frac).round() as u64;
            let time = rounds as f64 * self.alpha + self.beta * words_moved as f64;
            CollectiveCharge {
                rounds,
                words_moved,
                time,
            }
        } else {
            let words_moved = lg * words;
            CollectiveCharge {
                rounds: lg,
                words_moved,
                time: lg as f64 * (self.alpha + self.beta * words as f64),
            }
        }
    }

    /// Cost breakdown of the **fused, segment-pipelined nonblocking
    /// allreduce** — the charge behind `iallreduce`. The payload is one
    /// contiguous buffer (packed Gram triangle + cross terms + scalars),
    /// so the engine can cut it into segments and pipeline them down the
    /// binomial tree: the tree still costs `⌈log₂P⌉` latency rounds
    /// (latency is unchanged — the paper's Table I message counts hold),
    /// but each word crosses the network only during the reduce-scatter /
    /// allgather-style sweep, moving `2·w·(P−1)/P` words on the critical
    /// path instead of the blocking tree's `⌈log₂P⌉·w`:
    ///
    /// ```text
    /// rounds      = ⌈log₂P⌉
    /// words_moved = 2·w·(P−1)/P          (bandwidth-optimal)
    /// time        = rounds·α + β·words_moved
    /// ```
    ///
    /// Strictly no slower than the blocking tree for `P ≥ 2` (equal at
    /// `P = 2`, where `2(P−1)/P = ⌈log₂P⌉ = 1`). With a [`Hierarchy`],
    /// each level pipelines independently at its own α/β.
    pub fn fused_allreduce_charge(&self, p: usize, words: u64) -> CollectiveCharge {
        let lg = collective_rounds(CollectiveKind::Allreduce, p);
        if lg == 0 {
            return CollectiveCharge {
                rounds: 0,
                words_moved: 0,
                time: 0.0,
            };
        }
        if let Some(h) = self.hierarchy {
            if h.cores_per_node > 1 && p > 1 {
                let local = p.min(h.cores_per_node);
                let nodes = p.div_ceil(h.cores_per_node);
                let lg_local = collective_rounds(CollectiveKind::Allreduce, local);
                let lg_nodes = collective_rounds(CollectiveKind::Allreduce, nodes);
                let w_local = pipelined_words(local, words);
                let w_nodes = pipelined_words(nodes, words);
                let time = lg_local as f64 * h.alpha_intra
                    + h.beta_intra * w_local as f64
                    + lg_nodes as f64 * self.alpha
                    + self.beta * w_nodes as f64;
                return CollectiveCharge {
                    rounds: lg_local + lg_nodes,
                    words_moved: w_local + w_nodes,
                    time,
                };
            }
        }
        let words_moved = pipelined_words(p, words);
        CollectiveCharge {
            rounds: lg,
            words_moved,
            time: lg as f64 * self.alpha + self.beta * words_moved as f64,
        }
    }

    /// Two-level collective: an intra-node tree phase at shared-memory
    /// rates plus an inter-node tree phase at network rates. Counters
    /// report total rounds and total words across both phases.
    fn hierarchical_charge(
        &self,
        kind: CollectiveKind,
        p: usize,
        words: u64,
        h: Hierarchy,
    ) -> CollectiveCharge {
        let local = p.min(h.cores_per_node);
        let nodes = p.div_ceil(h.cores_per_node);
        let lg_local = collective_rounds(kind, local);
        let lg_nodes = collective_rounds(kind, nodes);
        let time = lg_local as f64 * (h.alpha_intra + h.beta_intra * words as f64)
            + lg_nodes as f64 * (self.alpha + self.beta * words as f64);
        CollectiveCharge {
            rounds: lg_local + lg_nodes,
            words_moved: (lg_local + lg_nodes) * words,
            time,
        }
    }
}

/// Critical-path word count of a bandwidth-optimal pipelined sweep on `p`
/// ranks: `2·w·(p−1)/p`, rounded to whole words.
fn pipelined_words(p: usize, words: u64) -> u64 {
    if p <= 1 {
        return 0;
    }
    (2.0 * words as f64 * (p as f64 - 1.0) / p as f64).round() as u64
}

/// Index of a kernel class in per-class breakdown arrays.
pub fn class_index(class: KernelClass) -> usize {
    match class {
        KernelClass::Gemm => 0,
        KernelClass::SparseGemm => 1,
        KernelClass::Dot => 2,
        KernelClass::Vector => 3,
    }
}

/// Names aligned with [`class_index`] for reporting.
pub const CLASS_NAMES: [&str; 4] = ["gemm", "sparse-gemm", "dot", "vector"];

/// Least-squares fit of (α, β) from measured collectives: given samples of
/// `(ranks, payload_words, seconds)` for tree allreduces, solve
/// `t ≈ ⌈log₂P⌉·α + ⌈log₂P⌉·w·β` in closed form (2×2 normal equations).
/// This is how a real machine would be calibrated into a [`CostModel`] —
/// run a collectives microbenchmark, fit, simulate.
///
/// # Panics
/// Panics with fewer than 2 samples or a singular design (all samples at
/// the same payload).
pub fn fit_alpha_beta(samples: &[(usize, u64, f64)]) -> (f64, f64) {
    assert!(samples.len() >= 2, "need at least two samples");
    // design rows: x1 = log2(P) rounds, x2 = rounds·w
    let (mut s11, mut s12, mut s22, mut b1, mut b2) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for &(p, w, t) in samples {
        let r = collective_rounds(CollectiveKind::Allreduce, p) as f64;
        let x1 = r;
        let x2 = r * w as f64;
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        b1 += x1 * t;
        b2 += x2 * t;
    }
    let det = s11 * s22 - s12 * s12;
    assert!(
        det.abs() > 1e-300 * s11.max(s22).max(1.0),
        "singular calibration design: vary the payload sizes"
    );
    let alpha = (b1 * s22 - b2 * s12) / det;
    let beta = (s11 * b2 - s12 * b1) / det;
    (alpha, beta)
}

/// Raw counters accumulated by one rank (thread engine) or by the critical
/// path (virtual engine).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostCounters {
    /// Messages on the critical path (the paper's `L`, counted in rounds).
    pub messages: u64,
    /// Words moved on the critical path (the paper's `W`).
    pub words: u64,
    /// Floating-point operations (the paper's `F`).
    pub flops: u64,
    /// Seconds of computation.
    pub comp_time: f64,
    /// Seconds of communication.
    pub comm_time: f64,
    /// Seconds spent waiting for stragglers at collective entry.
    pub idle_time: f64,
}

impl CostCounters {
    /// Total virtual time.
    pub fn total_time(&self) -> f64 {
        self.comp_time + self.comm_time + self.idle_time
    }

    /// Accumulate another counter set (used when merging phases).
    pub fn merge(&mut self, other: &CostCounters) {
        self.messages += other.messages;
        self.words += other.words;
        self.flops += other.flops;
        self.comp_time += other.comp_time;
        self.comm_time += other.comm_time;
        self.idle_time += other.idle_time;
    }
}

/// A finished run's cost summary, as reported by either engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostReport {
    /// Number of ranks.
    pub ranks: usize,
    /// Critical-path counters (max-clock rank for times; totals for F/W/L
    /// are per-rank critical-path values, matching Table I's "costs along
    /// the critical path").
    pub critical: CostCounters,
}

impl CostReport {
    /// End-to-end simulated running time.
    pub fn running_time(&self) -> f64 {
        self.critical.total_time()
    }

    /// Combine another report covering a different phase of the same run:
    /// counters add along the critical path, ranks must agree (a zero
    /// `ranks` acts as the identity so reports fold from `default()`).
    pub fn merge(&mut self, other: &CostReport) {
        if self.ranks == 0 {
            self.ranks = other.ranks;
        } else if other.ranks != 0 {
            assert_eq!(
                self.ranks, other.ranks,
                "merging reports of different machines"
            );
        }
        self.critical.merge(&other.critical);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_are_ceil_log2() {
        assert_eq!(collective_rounds(CollectiveKind::Allreduce, 1), 0);
        assert_eq!(collective_rounds(CollectiveKind::Allreduce, 2), 1);
        assert_eq!(collective_rounds(CollectiveKind::Allreduce, 3), 2);
        assert_eq!(collective_rounds(CollectiveKind::Allreduce, 4), 2);
        assert_eq!(collective_rounds(CollectiveKind::Allreduce, 12288), 14);
        assert_eq!(collective_rounds(CollectiveKind::PointToPoint, 12288), 1);
    }

    #[test]
    fn collective_time_scales_with_p_and_words() {
        let m = CostModel::cray_xc30();
        let t1 = m.collective_time(CollectiveKind::Allreduce, 64, 10);
        let t2 = m.collective_time(CollectiveKind::Allreduce, 4096, 10);
        let t3 = m.collective_time(CollectiveKind::Allreduce, 64, 100_000);
        assert!(t2 > t1, "more ranks, more rounds");
        assert!(t3 > t1, "more words, more time");
    }

    #[test]
    fn latency_dominates_small_messages() {
        // The regime that makes SA methods win: for a tiny payload, one
        // s-sized collective is far cheaper than s unit collectives.
        let m = CostModel::cray_xc30();
        let s = 64u64;
        let one_big = m.collective_time(CollectiveKind::Allreduce, 1024, s * s);
        let many_small: f64 = (0..s)
            .map(|_| m.collective_time(CollectiveKind::Allreduce, 1024, 1))
            .sum();
        assert!(
            one_big < many_small / 2.0,
            "big {one_big} vs many {many_small}"
        );
    }

    #[test]
    fn gemm_class_is_faster_than_dot_class() {
        let m = CostModel::cray_xc30();
        assert!(
            m.compute_time(KernelClass::Gemm, 1_000_000, 100)
                < m.compute_time(KernelClass::Dot, 1_000_000, 100)
        );
    }

    #[test]
    fn cache_spill_slows_kernels() {
        let m = CostModel::cray_xc30();
        let fast = m.compute_time(KernelClass::SparseGemm, 1_000_000, 1_000);
        let slow = m.compute_time(KernelClass::SparseGemm, 1_000_000, m.cache_words + 1);
        assert!((slow / fast - m.cache_penalty).abs() < 1e-12);
    }

    #[test]
    fn free_network_has_no_comm_cost() {
        let m = CostModel::free_network();
        assert_eq!(
            m.collective_time(CollectiveKind::Allreduce, 4096, 1_000_000),
            0.0
        );
    }

    #[test]
    fn counters_merge() {
        let mut a = CostCounters {
            messages: 1,
            words: 2,
            flops: 3,
            comp_time: 0.5,
            comm_time: 0.25,
            idle_time: 0.25,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.messages, 2);
        assert_eq!(a.words, 4);
        assert_eq!(a.flops, 6);
        assert!((a.total_time() - 2.0).abs() < 1e-15);
    }
}

#[cfg(test)]
mod allreduce_algo_tests {
    use super::*;

    #[test]
    fn rabenseifner_beats_tree_for_large_payloads() {
        let tree = CostModel::cray_xc30();
        let rab = CostModel {
            allreduce_algo: AllreduceAlgo::Rabenseifner,
            ..tree
        };
        let p = 4096;
        let large = 100_000;
        assert!(
            rab.collective_time(CollectiveKind::Allreduce, p, large)
                < tree.collective_time(CollectiveKind::Allreduce, p, large)
        );
        // ...but loses on latency for tiny payloads (2× the rounds)
        assert!(
            rab.collective_time(CollectiveKind::Allreduce, p, 1)
                > tree.collective_time(CollectiveKind::Allreduce, p, 1)
        );
    }

    #[test]
    fn auto_switches_at_threshold() {
        let auto = CostModel {
            allreduce_algo: AllreduceAlgo::Auto {
                threshold_words: 1000,
            },
            ..CostModel::cray_xc30()
        };
        let p = 1024;
        let small = auto.collective_charge(CollectiveKind::Allreduce, p, 999);
        let big = auto.collective_charge(CollectiveKind::Allreduce, p, 1000);
        assert_eq!(small.rounds, 10, "tree below threshold");
        assert_eq!(big.rounds, 20, "rabenseifner at/above threshold");
    }

    #[test]
    fn non_allreduce_collectives_always_use_tree() {
        let rab = CostModel {
            allreduce_algo: AllreduceAlgo::Rabenseifner,
            ..CostModel::cray_xc30()
        };
        let c = rab.collective_charge(CollectiveKind::Bcast, 1024, 50);
        assert_eq!(c.rounds, 10);
        assert_eq!(c.words_moved, 500);
    }

    #[test]
    fn rabenseifner_word_count_is_bandwidth_optimal() {
        let rab = CostModel {
            allreduce_algo: AllreduceAlgo::Rabenseifner,
            ..CostModel::cray_xc30()
        };
        let c = rab.collective_charge(CollectiveKind::Allreduce, 1 << 20, 10_000);
        // ≈ 2w(P−1)/P ≈ 2w
        assert!((c.words_moved as i64 - 20_000).abs() < 10);
    }

    #[test]
    fn single_rank_charges_nothing() {
        let m = CostModel::cray_xc30();
        let c = m.collective_charge(CollectiveKind::Allreduce, 1, 1000);
        assert_eq!(
            c,
            CollectiveCharge {
                rounds: 0,
                words_moved: 0,
                time: 0.0
            }
        );
    }
}

#[cfg(test)]
mod fused_allreduce_tests {
    use super::*;

    #[test]
    fn fused_keeps_tree_latency_but_moves_pipelined_words() {
        let m = CostModel::cray_xc30();
        for p in [2usize, 3, 192, 1024, 12_288] {
            let w = 592u64;
            let tree = m.collective_charge(CollectiveKind::Allreduce, p, w);
            let fused = m.fused_allreduce_charge(p, w);
            assert_eq!(fused.rounds, tree.rounds, "p={p}: latency is unchanged");
            let expect = (2.0 * w as f64 * (p as f64 - 1.0) / p as f64).round() as u64;
            assert_eq!(fused.words_moved, expect, "p={p}");
            assert!(
                fused.words_moved <= tree.words_moved,
                "p={p}: pipelining must never move more words"
            );
            assert!(fused.time <= tree.time + 1e-18, "p={p}: never slower");
        }
    }

    #[test]
    fn fused_words_reduction_is_at_least_half_log_p() {
        // The factor that drives the fig4 regeneration: at ≥ 192 ranks the
        // blocking tree moves ⌈log₂P⌉·w while the fused sweep moves < 2w,
        // so the reduction is ≥ ⌈log₂P⌉/2 ≥ 4× — comfortably above the
        // 1.8× acceptance bar on every fig4 dataset/p point.
        let m = CostModel::cray_xc30();
        for p in [192usize, 384, 768, 1536, 3072, 6144, 12_288] {
            let w = 10_000u64;
            let tree = m
                .collective_charge(CollectiveKind::Allreduce, p, w)
                .words_moved;
            let fused = m.fused_allreduce_charge(p, w).words_moved;
            let factor = tree as f64 / fused as f64;
            assert!(factor >= 1.8, "p={p}: words reduction only {factor}");
        }
    }

    #[test]
    fn fused_single_rank_and_empty_payload_are_free() {
        let m = CostModel::cray_xc30();
        let c = m.fused_allreduce_charge(1, 1000);
        assert_eq!((c.rounds, c.words_moved, c.time), (0, 0, 0.0));
        let c = m.fused_allreduce_charge(64, 0);
        assert_eq!(c.words_moved, 0);
        assert!((c.time - 6.0 * m.alpha).abs() < 1e-18, "pure latency");
    }

    #[test]
    fn fused_hierarchical_pipelines_each_level() {
        let m = CostModel::cray_xc30_hierarchical();
        let c = m.fused_allreduce_charge(48, 10);
        // 24-core nodes: 5 intra rounds + 1 inter round, words pipelined
        // per level: 2·10·23/24 ≈ 19 intra + 2·10·1/2 = 10 inter.
        assert_eq!(c.rounds, 6);
        assert_eq!(c.words_moved, 19 + 10);
        let flat = CostModel::cray_xc30().fused_allreduce_charge(48, 10);
        assert!(c.time < flat.time, "shared-memory rounds are cheaper");
    }
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;

    #[test]
    fn hierarchical_collectives_are_cheaper_at_scale() {
        let flat = CostModel::cray_xc30();
        let hier = CostModel::cray_xc30_hierarchical();
        let p = 12_288; // 512 nodes × 24 cores
        let flat_t = flat.collective_time(CollectiveKind::Allreduce, p, 16);
        let hier_t = hier.collective_time(CollectiveKind::Allreduce, p, 16);
        assert!(
            hier_t < flat_t,
            "only inter-node rounds should pay the network α: {hier_t} vs {flat_t}"
        );
        // 14 flat rounds vs 5 intra + 9 inter: inter-node α dominates
        let expect = 5.0 * (8.0e-8 + 1.0e-9 * 16.0) + 9.0 * (8.0e-6 + 1.0e-8 * 16.0);
        assert!((hier_t - expect).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_within_one_node_is_shared_memory_only() {
        let hier = CostModel::cray_xc30_hierarchical();
        let c = hier.collective_charge(CollectiveKind::Allreduce, 16, 8);
        // 16 ranks on one 24-core node: log2(16)=4 intra rounds, 0 inter
        assert_eq!(c.rounds, 4);
        assert!(c.time < 1e-6, "pure shared-memory collective: {}", c.time);
    }

    #[test]
    fn hierarchy_counts_rounds_across_both_levels() {
        let hier = CostModel::cray_xc30_hierarchical();
        let c = hier.collective_charge(CollectiveKind::Allreduce, 48, 10);
        // 24 local (5 rounds) + 2 nodes (1 round)
        assert_eq!(c.rounds, 6);
        assert_eq!(c.words_moved, 60);
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    #[test]
    fn fit_recovers_known_parameters() {
        let (alpha_true, beta_true) = (5.0e-6, 2.0e-8);
        let samples: Vec<(usize, u64, f64)> = [64usize, 256, 1024, 4096]
            .iter()
            .flat_map(|&p| {
                [1u64, 100, 10_000].map(move |w| {
                    let r = collective_rounds(CollectiveKind::Allreduce, p) as f64;
                    (p, w, r * alpha_true + r * w as f64 * beta_true)
                })
            })
            .collect();
        let (alpha, beta) = fit_alpha_beta(&samples);
        assert!((alpha - alpha_true).abs() < 1e-12, "alpha {alpha}");
        assert!((beta - beta_true).abs() < 1e-14, "beta {beta}");
    }

    #[test]
    fn fit_is_robust_to_noise() {
        let mut rng = 0x12345u64;
        let mut next = move || {
            // tiny LCG for multiplicative noise in [0.95, 1.05]
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            0.95 + 0.1 * ((rng >> 33) as f64 / (1u64 << 31) as f64)
        };
        let (alpha_true, beta_true) = (8.0e-6, 1.0e-8);
        let samples: Vec<(usize, u64, f64)> = [128usize, 512, 2048, 8192]
            .iter()
            .flat_map(|&p| {
                [1u64, 50, 1000, 50_000].map(|w| {
                    let r = collective_rounds(CollectiveKind::Allreduce, p) as f64;
                    (p, w, (r * alpha_true + r * w as f64 * beta_true))
                })
            })
            .map(|(p, w, t)| (p, w, t * next()))
            .collect();
        let (alpha, beta) = fit_alpha_beta(&samples);
        assert!((alpha / alpha_true - 1.0).abs() < 0.2, "alpha {alpha}");
        assert!((beta / beta_true - 1.0).abs() < 0.2, "beta {beta}");
    }

    #[test]
    #[should_panic(expected = "singular calibration")]
    fn constant_payload_design_is_rejected() {
        // with only one payload size, α and β are not identifiable
        let samples = vec![(64usize, 10u64, 1e-4), (64, 10, 1.1e-4), (64, 10, 0.9e-4)];
        fit_alpha_beta(&samples);
    }

    #[test]
    fn class_breakdown_sums_to_comp_time() {
        use crate::{ThreadMachine, VirtualCluster};
        let model = CostModel::cray_xc30();
        let results = ThreadMachine::run(2, model, |comm| {
            comm.charge_flops(KernelClass::Gemm, 1_000_000, 10);
            comm.charge_flops(KernelClass::Dot, 500_000, 10);
            comm.charge_flops(KernelClass::Vector, 200_000, 10);
            (comm.comp_by_class(), comm.counters().comp_time)
        });
        for ((by_class, total), _) in &results {
            let sum: f64 = by_class.iter().sum();
            assert!((sum - total).abs() < 1e-15);
            assert!(by_class[class_index(KernelClass::Gemm)] > 0.0);
            assert_eq!(by_class[class_index(KernelClass::SparseGemm)], 0.0);
        }
        let mut vc = VirtualCluster::new(2, model);
        vc.charge_uniform(KernelClass::Gemm, 1_000_000, 10);
        vc.charge_uniform(KernelClass::Dot, 500_000, 10);
        vc.charge_uniform(KernelClass::Vector, 200_000, 10);
        let bc = vc.comp_by_class();
        assert_eq!(bc, results[0].0 .0, "engines agree on the breakdown");
    }
}
