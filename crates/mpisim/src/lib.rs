//! `mpisim` — a simulated distributed-memory machine.
//!
//! The paper evaluates on a Cray XC30 with MPI on up to 12,288 cores. That
//! hardware is not available here and Rust MPI bindings are thin, so this
//! crate provides the substitute substrate (see DESIGN.md §3): the classic
//! α-β-γ machine model that the paper itself uses for its Table I analysis,
//! with two interchangeable execution engines.
//!
//! * [`ThreadMachine`] — a *real* SPMD message-passing machine: one OS
//!   thread per rank, typed channels, deterministic tree collectives
//!   (allreduce / reduce / bcast / allgather / gather / barrier and
//!   point-to-point send/recv). Data physically moves between ranks exactly
//!   as it would under MPI. Used for modest `P` (tests, examples, and
//!   validating the virtual engine).
//! * [`VirtualCluster`] — an analytic engine for paper-scale `P`: per-rank
//!   virtual clocks advanced by the same cost formulas, with *exact*
//!   per-rank flop attribution (so load imbalance / stragglers are modeled,
//!   matching the paper's §VI observation) but without spawning threads.
//!   The solvers compute numerics once and charge costs as they go.
//!
//! Both engines share [`CostModel`]: latency `α` per message round,
//! inverse bandwidth `β` per 8-byte word, and per-kernel-class flop rates
//! (a BLAS-3 GEMM class is faster per flop than a BLAS-1 dot class — the
//! effect behind the SA methods' computation speedups in Fig. 4e–h — with a
//! cache-capacity penalty once a kernel's working set spills).
//!
//! Simulated time is deterministic: collectives combine contributions in a
//! fixed tree order, so repeated runs produce bit-identical numerics *and*
//! identical virtual times.

// Index-based loops mirror the textbook formulations of the numerical
// kernels; iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cost;
pub(crate) mod telemetry_support;
pub mod thread_machine;
pub mod virtual_cluster;

pub use chaos::{ChaosPlan, ChaosSpec};
pub use cost::{
    class_index, collective_rounds, fit_alpha_beta, AllreduceAlgo, CollectiveCharge,
    CollectiveKind, CostCounters, CostModel, CostReport, Hierarchy, KernelClass, CLASS_NAMES,
};
pub use thread_machine::{Comm, IallreduceRequest, ThreadMachine};
pub use virtual_cluster::VirtualCluster;

/// The observability subsystem both engines feed (re-exported so callers
/// need no separate dependency for phase tags and registries).
pub use saco_telemetry as telemetry;
