//! The analytic engine: per-rank virtual clocks without threads.
//!
//! The paper's strong-scaling experiments use up to P = 12,288 ranks.
//! Spawning that many threads to each do microseconds of work per iteration
//! would measure the host's scheduler, not the algorithm, so for large `P`
//! the solvers compute their numerics once (globally) and *charge* the cost
//! of the distributed execution here: per-rank flop attribution (so a rank
//! holding more nonzeros of the sampled columns is a straggler, exactly as
//! on the real machine) and collective costs from the shared
//! [`CostModel`] formulas. The thread engine and this engine agree by
//! construction — a property checked by the cross-engine tests.

use crate::chaos::{ChaosPlan, ChaosSpec, RESTART_OVERHEAD_SECS};
use crate::cost::{
    CollectiveCharge, CollectiveKind, CostCounters, CostModel, CostReport, KernelClass,
};
use crate::telemetry_support::{kind_slot, registry_from_ranks, RankTelemetry};
use saco_telemetry::{Phase, Registry};

/// Bookkeeping for an in-flight fused allreduce: the charge was fixed at
/// start (payload size and every rank's entry clock were known), the
/// accounting settles at wait.
#[derive(Clone, Copy, Debug)]
struct PendingFused {
    completion: f64,
    charge: CollectiveCharge,
    /// On-path cost: `charge.time` plus any injected jitter.
    cost: f64,
    /// Jitter drawn at start (0 without chaos), recorded at wait.
    jitter: f64,
    /// Completion on the chaos-free counterfactual timeline.
    clean_completion: f64,
    words: u64,
}

/// Live injection state for an enabled chaos plan (see [`crate::chaos`]).
/// Alongside the schedule itself, it maintains a *clean counterfactual*
/// timeline — per-rank clocks and idle as they would evolve with no
/// skew/jitter/stalls/faults — so the cluster can report exactly how much
/// idle time the injected perturbations caused (`chaos.induced_idle_time`).
#[derive(Clone, Debug)]
struct ChaosState {
    plan: ChaosPlan,
    /// Per-rank compute-rate multipliers, fixed at enable time.
    skew: Vec<f64>,
    /// Program-order collective counter (identical on every rank).
    collective_idx: u64,
    /// Outer-block checkpoint counter.
    ckpt_idx: usize,
    /// Per-rank clock at the last checkpoint — a failed rank redoes the
    /// work since this point.
    last_ckpt_clocks: Vec<f64>,
    /// Counterfactual clocks: same charges, no chaos.
    clean_clocks: Vec<f64>,
    /// Counterfactual idle accumulation.
    clean_idle: Vec<f64>,
    /// The fail-stop fault fired already (at most one per run).
    failed: bool,
}

/// A simulated cluster of `p` ranks with individual virtual clocks.
#[derive(Clone, Debug)]
pub struct VirtualCluster {
    p: usize,
    model: CostModel,
    clocks: Vec<f64>,
    comp: Vec<f64>,
    comm: Vec<f64>,
    idle: Vec<f64>,
    flops: Vec<u64>,
    comp_by_class: Vec<[f64; 4]>,
    messages: u64,
    words: u64,
    telemetry: Vec<RankTelemetry>,
    pending: Option<PendingFused>,
    /// Per-rank entry clocks of the pending fused allreduce — a reusable
    /// buffer so starting one allocates nothing after the first outer loop.
    pending_entry: Vec<f64>,
    /// Injection state when chaos is enabled; `None` on clean runs, which
    /// then take exactly the pre-chaos code paths.
    chaos: Option<ChaosState>,
}

impl VirtualCluster {
    /// A fresh cluster at time zero.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, model: CostModel) -> Self {
        assert!(p > 0, "need at least one rank");
        Self {
            p,
            model,
            clocks: vec![0.0; p],
            comp: vec![0.0; p],
            comm: vec![0.0; p],
            idle: vec![0.0; p],
            flops: vec![0; p],
            comp_by_class: vec![[0.0; 4]; p],
            messages: 0,
            words: 0,
            telemetry: vec![RankTelemetry::default(); p],
            pending: None,
            pending_entry: Vec::new(),
            chaos: None,
        }
    }

    /// Switch on deterministic chaos injection (see [`crate::chaos`]):
    /// per-rank compute skew, per-collective jitter, transient stalls, and
    /// an optional fail-stop fault recovered at the next
    /// [`checkpoint`](Self::checkpoint). Chaos perturbs charged *time*
    /// only — the caller's numerics are untouched. Call before charging
    /// anything; enabling mid-run would split the counterfactual timeline.
    pub fn enable_chaos(&mut self, spec: &ChaosSpec) {
        let plan = ChaosPlan::new(spec);
        self.chaos = Some(ChaosState {
            skew: (0..self.p).map(|r| plan.skew_mult(r)).collect(),
            plan,
            collective_idx: 0,
            ckpt_idx: 0,
            last_ckpt_clocks: self.clocks.clone(),
            clean_clocks: self.clocks.clone(),
            clean_idle: self.idle.clone(),
            failed: false,
        });
        for rt in &mut self.telemetry {
            rt.chaos.enabled = true;
        }
    }

    /// Whether chaos injection is enabled.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos.is_some()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Charge every rank the same local computation (replicated work, e.g.
    /// the subproblem solve and scalar updates of Fig. 1 step 5).
    /// Attributed to the generic `comp` phase.
    pub fn charge_uniform(&mut self, class: KernelClass, flops: u64, working_set_words: u64) {
        self.charge_uniform_phase(class, flops, working_set_words, Phase::Comp);
    }

    /// Like [`charge_uniform`](Self::charge_uniform) with an explicit
    /// telemetry phase label. Cost is identical; only attribution differs.
    pub fn charge_uniform_phase(
        &mut self,
        class: KernelClass,
        flops: u64,
        working_set_words: u64,
        phase: Phase,
    ) {
        let t = self.model.compute_time(class, flops, working_set_words);
        let ci = crate::cost::class_index(class);
        if let Some(ch) = &mut self.chaos {
            // Rank-rate skew: rank r runs its compute `skew[r]`× slower.
            // The clean counterfactual clock advances by the unskewed t.
            for r in 0..self.p {
                let tr = t * ch.skew[r];
                self.clocks[r] += tr;
                self.comp[r] += tr;
                self.comp_by_class[r][ci] += tr;
                self.flops[r] += flops;
                self.telemetry[r].phases.record_full(phase, tr, 0, flops);
                self.telemetry[r].chaos.skew_time += tr - t;
                ch.clean_clocks[r] += t;
            }
            return;
        }
        for r in 0..self.p {
            self.clocks[r] += t;
            self.comp[r] += t;
            self.comp_by_class[r][ci] += t;
            self.flops[r] += flops;
            self.telemetry[r].phases.record_full(phase, t, 0, flops);
        }
    }

    /// Charge rank-dependent local computation; `flops_of(rank)` returns
    /// the flops rank `rank` executes. This is how data-dependent load
    /// imbalance (stragglers) enters the simulation.
    pub fn charge_per_rank<F: Fn(usize) -> u64 + Sync>(
        &mut self,
        class: KernelClass,
        working_set_words: u64,
        flops_of: F,
    ) {
        self.charge_per_rank_phase(class, working_set_words, flops_of, Phase::Comp);
    }

    /// Like [`charge_per_rank`](Self::charge_per_rank) with an explicit
    /// telemetry phase label.
    pub fn charge_per_rank_phase<F: Fn(usize) -> u64 + Sync>(
        &mut self,
        class: KernelClass,
        working_set_words: u64,
        flops_of: F,
        phase: Phase,
    ) {
        self.charge_ranks(class, |r| (flops_of(r), working_set_words), phase);
    }

    /// Below this rank count the per-rank charge loop runs serially even
    /// when the pool is enabled: fanning microseconds of arithmetic out
    /// to OS threads costs more than the loop itself.
    const PAR_RANK_MIN: usize = 2048;

    /// The per-rank local-contribution loop behind every `charge_per_rank*`
    /// entry point. Each rank's update reads only `f(r)` and writes only
    /// rank `r`'s slots, so the loop fans out over `saco-par` in disjoint
    /// rank chunks when the pool is enabled and `p` is paper-scale (up to
    /// 12,288 ranks). Per-rank arithmetic is unchanged and no value
    /// crosses a chunk boundary, so the charge is bitwise identical to
    /// the serial loop at any thread count.
    fn charge_ranks<F: Fn(usize) -> (u64, u64) + Sync>(
        &mut self,
        class: KernelClass,
        f: F,
        phase: Phase,
    ) {
        let ci = crate::cost::class_index(class);
        if let Some(ch) = &mut self.chaos {
            // One code path under chaos (the counterfactual bookkeeping
            // would complicate the scatter fan-out for no gain: the loop
            // is O(p) trivial arithmetic). Skew multiplies each rank's
            // compute time; the clean clocks advance unskewed.
            for r in 0..self.p {
                let (fl, ws) = f(r);
                let t = self.model.compute_time(class, fl, ws);
                let tr = t * ch.skew[r];
                self.clocks[r] += tr;
                self.comp[r] += tr;
                self.comp_by_class[r][ci] += tr;
                self.flops[r] += fl;
                self.telemetry[r].phases.record_full(phase, tr, 0, fl);
                self.telemetry[r].chaos.skew_time += tr - t;
                ch.clean_clocks[r] += t;
            }
            return;
        }
        let nthreads = saco_par::threads();
        if nthreads > 1 && self.p >= Self::PAR_RANK_MIN {
            let model = self.model;
            let chunk = self.p.div_ceil(4 * nthreads);
            let items: Vec<_> = self
                .clocks
                .chunks_mut(chunk)
                .zip(self.comp.chunks_mut(chunk))
                .zip(self.comp_by_class.chunks_mut(chunk))
                .zip(self.flops.chunks_mut(chunk))
                .zip(self.telemetry.chunks_mut(chunk))
                .enumerate()
                .collect();
            saco_par::scatter(
                nthreads,
                items,
                |(c, ((((clocks, comp), comp_by_class), flops), telemetry))| {
                    for i in 0..clocks.len() {
                        let (fl, ws) = f(c * chunk + i);
                        let t = model.compute_time(class, fl, ws);
                        clocks[i] += t;
                        comp[i] += t;
                        comp_by_class[i][ci] += t;
                        flops[i] += fl;
                        telemetry[i].phases.record_full(phase, t, 0, fl);
                    }
                },
            );
            return;
        }
        for r in 0..self.p {
            let (fl, ws) = f(r);
            let t = self.model.compute_time(class, fl, ws);
            self.clocks[r] += t;
            self.comp[r] += t;
            self.comp_by_class[r][ci] += t;
            self.flops[r] += fl;
            self.telemetry[r].phases.record_full(phase, t, 0, fl);
        }
    }

    /// Like [`charge_per_rank`](Self::charge_per_rank) but with a
    /// rank-dependent working set as well: `f(rank)` returns
    /// `(flops, working_set_words)`. Needed to mirror the thread engine
    /// exactly, where each rank's kernel sees its own working set (and may
    /// therefore land on a different side of the cache cliff).
    pub fn charge_per_rank_ws<F: Fn(usize) -> (u64, u64) + Sync>(
        &mut self,
        class: KernelClass,
        f: F,
    ) {
        self.charge_per_rank_ws_phase(class, f, Phase::Comp);
    }

    /// Like [`charge_per_rank_ws`](Self::charge_per_rank_ws) with an
    /// explicit telemetry phase label.
    pub fn charge_per_rank_ws_phase<F: Fn(usize) -> (u64, u64) + Sync>(
        &mut self,
        class: KernelClass,
        f: F,
        phase: Phase,
    ) {
        self.charge_ranks(class, f, phase);
    }

    /// Inject the per-collective perturbations for the next collective in
    /// program order: transient stalls advance stalled ranks' clocks (as
    /// idle — stalled time is neither compute nor transfer) before the
    /// entry-clock max is taken, and the returned jitter is added to the
    /// collective's cost (identical on every rank). Returns 0 when chaos
    /// is off.
    fn chaos_collective_entry(&mut self) -> f64 {
        let Some(ch) = &mut self.chaos else {
            return 0.0;
        };
        let idx = ch.collective_idx;
        ch.collective_idx += 1;
        for r in 0..self.p {
            let stall = ch.plan.stall(r, idx);
            if stall > 0.0 {
                self.clocks[r] += stall;
                self.idle[r] += stall;
                self.telemetry[r].phases.record(Phase::Idle, stall);
                self.telemetry[r].chaos.stalls += 1;
                self.telemetry[r].chaos.stall_time += stall;
            }
        }
        ch.plan.jitter(idx)
    }

    /// Charge a collective of `words` payload: all ranks synchronize to the
    /// latest participant, wait out stragglers, then pay the α-β tree cost.
    pub fn collective(&mut self, kind: CollectiveKind, words: u64) {
        if self.p == 1 {
            return;
        }
        let jitter = self.chaos_collective_entry();
        let max_entry = self
            .clocks
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let charge = self.model.collective_charge(kind, self.p, words);
        let cost = charge.time + jitter;
        self.messages += charge.rounds;
        self.words += charge.words_moved;
        for r in 0..self.p {
            let idle = max_entry - self.clocks[r];
            self.idle[r] += idle;
            self.comm[r] += cost;
            self.clocks[r] = max_entry + cost;
            self.telemetry[r].collectives[kind_slot(kind)] += 1;
            self.telemetry[r]
                .phases
                .record_full(Phase::Comm, cost, charge.words_moved, 0);
            self.telemetry[r].phases.record(Phase::Idle, idle);
        }
        if let Some(ch) = &mut self.chaos {
            // Counterfactual: the same collective on the clean timeline.
            let clean_max = ch
                .clean_clocks
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            for r in 0..self.p {
                ch.clean_idle[r] += clean_max - ch.clean_clocks[r];
                ch.clean_clocks[r] = clean_max + charge.time;
                self.telemetry[r].chaos.jitter_time += jitter;
            }
        }
    }

    /// Shorthand for the solvers' one collective.
    pub fn allreduce(&mut self, words: u64) {
        self.collective(CollectiveKind::Allreduce, words);
    }

    /// Start a **nonblocking fused allreduce** of `words` payload words.
    /// The charge is the segment-pipelined
    /// [`fused_allreduce_charge`](CostModel::fused_allreduce_charge)
    /// (`⌈log₂P⌉` latency rounds, `2·w·(P−1)/P` words); it completes at
    /// `max(entry clocks) + cost`. Computation charged between start and
    /// [`iallreduce_wait`](Self::iallreduce_wait) overlaps the in-flight
    /// reduction, so overlapped regions cost `max(comp, comm)` rather
    /// than their sum. At most one fused allreduce may be outstanding.
    pub fn iallreduce_start(&mut self, words: u64) {
        assert!(
            self.pending.is_none(),
            "one fused allreduce may be in flight at a time"
        );
        // Stalls and the jitter draw happen at start — entry is when ranks
        // join the collective — so the perturbed entry clocks feed the
        // completion time exactly as in the blocking path.
        let jitter = if self.p > 1 {
            self.chaos_collective_entry()
        } else {
            0.0
        };
        let max_entry = self
            .clocks
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let charge = self.model.fused_allreduce_charge(self.p, words);
        let clean_completion = match &self.chaos {
            Some(ch) => {
                ch.clean_clocks
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max)
                    + charge.time
            }
            None => 0.0,
        };
        self.pending_entry.resize(self.p, 0.0);
        self.pending_entry.copy_from_slice(&self.clocks);
        self.pending = Some(PendingFused {
            completion: max_entry + charge.time + jitter,
            charge,
            cost: charge.time + jitter,
            jitter,
            clean_completion,
            words,
        });
    }

    /// Complete the in-flight fused allreduce: each rank leaves at
    /// `max(arrival, completion)`; of its remaining window only
    /// `min(cost, completion − arrival)` is communication (the rest is
    /// idle), and the portion already covered by computation is recorded
    /// as hidden time (the `comm.overlap_hidden_time` gauge).
    ///
    /// # Panics
    /// Panics if no fused allreduce is outstanding.
    pub fn iallreduce_wait(&mut self) {
        let pending = self
            .pending
            .take()
            .expect("iallreduce_wait without iallreduce_start");
        if self.p == 1 {
            return;
        }
        let cost = pending.cost;
        self.messages += pending.charge.rounds;
        self.words += pending.charge.words_moved;
        for r in 0..self.p {
            let arrival = self.clocks[r];
            let visible = (pending.completion - arrival).max(0.0);
            let comm = cost.min(visible);
            let idle = visible - comm;
            let hidden = (arrival.min(pending.completion) - self.pending_entry[r]).max(0.0);
            self.comm[r] += comm;
            self.idle[r] += idle;
            self.clocks[r] = arrival.max(pending.completion);
            self.telemetry[r].collectives[kind_slot(CollectiveKind::Allreduce)] += 1;
            self.telemetry[r]
                .phases
                .record_full(Phase::Comm, comm, pending.charge.words_moved, 0);
            self.telemetry[r].phases.record(Phase::Idle, idle);
            self.telemetry[r].words_packed += pending.words;
            self.telemetry[r].hidden_time += hidden;
        }
        if let Some(ch) = &mut self.chaos {
            // Counterfactual completion of the same fused collective.
            for r in 0..self.p {
                let arrival = ch.clean_clocks[r];
                let visible = (pending.clean_completion - arrival).max(0.0);
                ch.clean_idle[r] += visible - pending.charge.time.min(visible);
                ch.clean_clocks[r] = arrival.max(pending.clean_completion);
                self.telemetry[r].chaos.jitter_time += pending.jitter;
            }
        }
    }

    /// Blocking fused allreduce: [`iallreduce_start`](Self::iallreduce_start)
    /// immediately completed by [`iallreduce_wait`](Self::iallreduce_wait)
    /// — the `--overlap off` comm path. Identical wire format and charge;
    /// zero overlap.
    pub fn iallreduce(&mut self, words: u64) {
        self.iallreduce_start(words);
        self.iallreduce_wait();
    }

    /// Block-boundary checkpoint: a free no-op on clean runs (so the
    /// strict cross-engine equality invariants are untouched). With chaos
    /// enabled it marks a recovery point, and if the plan's fail-stop
    /// fault fires at this block the failed rank pays the redo time back
    /// to the previous checkpoint plus
    /// [`RESTART_OVERHEAD_SECS`](crate::chaos::RESTART_OVERHEAD_SECS).
    /// Recovery is pure recomputation of deterministic work, so the
    /// caller's numerics need no rollback — only time is charged.
    pub fn checkpoint(&mut self) {
        let Some(ch) = &mut self.chaos else {
            return;
        };
        let step = ch.ckpt_idx;
        ch.ckpt_idx += 1;
        for rt in &mut self.telemetry {
            rt.chaos.checkpoints += 1;
        }
        if !ch.failed {
            if let Some((rank, _)) = ch.plan.spec().fail {
                if rank < self.p && ch.plan.fails_at(rank, step) {
                    ch.failed = true;
                    let redo = self.clocks[rank] - ch.last_ckpt_clocks[rank];
                    let recovery = redo + RESTART_OVERHEAD_SECS;
                    self.clocks[rank] += recovery;
                    self.idle[rank] += recovery;
                    self.telemetry[rank].phases.record(Phase::Idle, recovery);
                    self.telemetry[rank].chaos.failures += 1;
                    self.telemetry[rank].chaos.recovery_time += recovery;
                }
            }
        }
        ch.last_ckpt_clocks.copy_from_slice(&self.clocks);
    }

    /// Current simulated time (max over rank clocks).
    pub fn time(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// The critical rank: the computational straggler, selected on the
    /// telemetry phase-table comp sum (ties toward the highest rank).
    /// Reading the *same* accumulators as
    /// [`Registry::critical_rank`](saco_telemetry::Registry::critical_rank)
    /// guarantees the cost report and the telemetry registry name the
    /// same rank even when two ranks tie at ulp distance — the raw
    /// `comp` running totals group additions differently and can break
    /// such ties the other way.
    fn critical_rank(&self) -> usize {
        (0..self.p)
            .max_by(|&a, &b| {
                self.telemetry[a]
                    .phases
                    .comp_time()
                    .partial_cmp(&self.telemetry[b].phases.comp_time())
                    .expect("finite clocks")
                    .then(a.cmp(&b))
            })
            .expect("at least one rank")
    }

    /// Critical-path cost report: the counters of the computational
    /// straggler (max `comp_time`, tie broken towards the highest rank —
    /// the same rule as the thread engine), plus the message/word counts
    /// (identical on all ranks).
    pub fn report(&self) -> CostReport {
        let critical_rank = self.critical_rank();
        CostReport {
            ranks: self.p,
            critical: CostCounters {
                messages: self.messages,
                words: self.words,
                flops: self.flops[critical_rank],
                comp_time: self.telemetry[critical_rank].phases.comp_time(),
                comm_time: self.comm[critical_rank],
                idle_time: self.idle[critical_rank],
            },
        }
    }

    /// Compute time per kernel class on the critical (max-comp) rank.
    pub fn comp_by_class(&self) -> [f64; 4] {
        self.comp_by_class[self.critical_rank()]
    }

    /// Total payload words handed to fused allreduces so far. Program-
    /// order: identical on every rank, so this is rank 0's count.
    pub fn words_packed(&self) -> u64 {
        self.telemetry.first().map_or(0, |t| t.words_packed)
    }

    /// In-flight fused-allreduce time hidden behind computation on the
    /// critical (max-comp) rank — the overlap that shortened the
    /// reported timeline.
    pub fn overlap_hidden_time(&self) -> f64 {
        self.telemetry[self.critical_rank()].hidden_time
    }

    /// Merged telemetry registry for the run so far: per-rank phase
    /// tables plus program-order collective counters, with
    /// `meta.engine = "virtual_cluster"`. Phase totals reconcile with
    /// [`report`](Self::report): per rank, the `comm` phase equals the
    /// comm counter and `comp + gram + prox + sampling` equals the comp
    /// counter.
    pub fn telemetry(&self) -> Registry {
        if let Some(ch) = &self.chaos {
            // The analytic engine can attribute idle time exactly: it kept
            // a clean counterfactual timeline alongside the perturbed one,
            // so per rank the chaos-induced idle is the (clamped) excess
            // over what the clean run would have idled anyway.
            let mut ranks = self.telemetry.clone();
            for (r, rt) in ranks.iter_mut().enumerate() {
                rt.chaos.induced_idle_time = (self.idle[r] - ch.clean_idle[r]).max(0.0);
            }
            return registry_from_ranks("virtual_cluster", &ranks);
        }
        registry_from_ranks("virtual_cluster", &self.telemetry)
    }

    /// Reset all clocks and counters to zero (reuse between experiments).
    pub fn reset(&mut self) {
        self.clocks.iter_mut().for_each(|c| *c = 0.0);
        self.comp.iter_mut().for_each(|c| *c = 0.0);
        self.comm.iter_mut().for_each(|c| *c = 0.0);
        self.idle.iter_mut().for_each(|c| *c = 0.0);
        self.flops.iter_mut().for_each(|c| *c = 0);
        self.comp_by_class.iter_mut().for_each(|c| *c = [0.0; 4]);
        self.messages = 0;
        self.words = 0;
        self.telemetry
            .iter_mut()
            .for_each(|t| *t = RankTelemetry::default());
        self.pending = None;
        if let Some(ch) = &mut self.chaos {
            // The plan (and its per-rank skew) survives a reset; only the
            // run-scoped state rewinds to time zero.
            ch.collective_idx = 0;
            ch.ckpt_idx = 0;
            ch.failed = false;
            ch.last_ckpt_clocks.iter_mut().for_each(|c| *c = 0.0);
            ch.clean_clocks.iter_mut().for_each(|c| *c = 0.0);
            ch.clean_idle.iter_mut().for_each(|c| *c = 0.0);
            for rt in &mut self.telemetry {
                rt.chaos.enabled = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_machine::ThreadMachine;

    #[test]
    fn uniform_charges_advance_all_clocks() {
        let mut vc = VirtualCluster::new(8, CostModel::cray_xc30());
        vc.charge_uniform(KernelClass::Dot, 1_200_000, 10);
        let expect = 1_200_000.0 / vc.model().dot_rate;
        assert!((vc.time() - expect).abs() < 1e-15);
    }

    #[test]
    fn imbalanced_charges_create_idle_time() {
        let mut vc = VirtualCluster::new(4, CostModel::cray_xc30());
        vc.charge_per_rank(KernelClass::Dot, 10, |r| (r as u64 + 1) * 1_200_000);
        vc.allreduce(4);
        let rep = vc.report();
        // critical rank (3) did 4.8 Mflops and waited for nobody
        assert_eq!(rep.critical.flops, 4_800_000);
        assert!(rep.critical.idle_time < 1e-15);
        // total time = slowest compute + collective
        let expect = 4.0 * 1_200_000.0 / vc.model().dot_rate
            + vc.model().collective_time(CollectiveKind::Allreduce, 4, 4);
        assert!((vc.time() - expect).abs() < 1e-12);
    }

    #[test]
    fn matches_thread_machine_on_scripted_run() {
        // The same SPMD script on both engines must produce identical
        // virtual times and counters.
        let model = CostModel::cray_xc30();
        let p = 8;

        let (_, thread_report) = ThreadMachine::run_report(p, model, |comm| {
            for _ in 0..5 {
                comm.charge_flops(KernelClass::Dot, (comm.rank() as u64 + 1) * 100_000, 64);
                let mut buf = vec![1.0; 16];
                comm.allreduce_sum(&mut buf);
                comm.charge_flops(KernelClass::Vector, 50_000, 64);
            }
        });

        let mut vc = VirtualCluster::new(p, model);
        for _ in 0..5 {
            vc.charge_per_rank(KernelClass::Dot, 64, |r| (r as u64 + 1) * 100_000);
            vc.allreduce(16);
            vc.charge_uniform(KernelClass::Vector, 50_000, 64);
        }
        let virtual_report = vc.report();

        let t = thread_report.critical;
        let v = virtual_report.critical;
        assert!(
            (t.total_time() - v.total_time()).abs() < 1e-12,
            "thread {} vs virtual {}",
            t.total_time(),
            v.total_time()
        );
        assert_eq!(t.messages, v.messages);
        assert_eq!(t.words, v.words);
        assert_eq!(t.flops, v.flops);
        assert!((t.comm_time - v.comm_time).abs() < 1e-12);
        assert!((t.comp_time - v.comp_time).abs() < 1e-12);
        assert!((t.idle_time - v.idle_time).abs() < 1e-12);
    }

    #[test]
    fn chaos_engines_agree_on_scripted_run() {
        // The same SPMD script with the same chaos spec on both engines
        // must produce identical perturbed times: the schedule draws are
        // pure functions of (seed, rank, program-order index), shared by
        // both engines.
        use crate::chaos::ChaosSpec;
        let model = CostModel::cray_xc30();
        let p = 8;
        let spec = ChaosSpec {
            seed: 77,
            skew: 0.15,
            jitter: 5e-5,
            straggle: 0.3,
            fail: Some((2, 1)),
        };

        let (_, thread_report, thread_reg) =
            ThreadMachine::run_report_telemetry(p, model, |comm| {
                comm.enable_chaos(&spec);
                for _ in 0..4 {
                    comm.charge_flops(KernelClass::Dot, (comm.rank() as u64 + 1) * 100_000, 64);
                    let mut buf = vec![1.0; 16];
                    let req = comm.iallreduce_sum_start(&mut buf);
                    comm.charge_flops(KernelClass::Vector, 50_000, 64);
                    comm.iallreduce_wait(req);
                    comm.checkpoint();
                }
            });

        let mut vc = VirtualCluster::new(p, model);
        vc.enable_chaos(&spec);
        for _ in 0..4 {
            vc.charge_per_rank(KernelClass::Dot, 64, |r| (r as u64 + 1) * 100_000);
            vc.iallreduce_start(16);
            vc.charge_uniform(KernelClass::Vector, 50_000, 64);
            vc.iallreduce_wait();
            vc.checkpoint();
        }
        let virtual_report = vc.report();
        let virtual_reg = vc.telemetry();

        let t = thread_report.critical;
        let v = virtual_report.critical;
        assert!(
            (t.total_time() - v.total_time()).abs() < 1e-12,
            "thread {} vs virtual {}",
            t.total_time(),
            v.total_time()
        );
        assert_eq!(t.messages, v.messages);
        assert_eq!(t.words, v.words);
        assert!((t.comp_time - v.comp_time).abs() < 1e-12);
        assert!((t.comm_time - v.comm_time).abs() < 1e-12);
        assert!((t.idle_time - v.idle_time).abs() < 1e-12);
        // The injected schedules (not just the totals) agree.
        for key in ["chaos.stalls", "chaos.failures", "chaos.checkpoints"] {
            assert_eq!(thread_reg.counter(key), virtual_reg.counter(key), "{key}");
        }
        for key in [
            "chaos.stall_time",
            "chaos.skew_time",
            "chaos.jitter_time",
            "chaos.recovery_time",
        ] {
            let a = thread_reg.gauge(key).expect(key);
            let b = virtual_reg.gauge(key).expect(key);
            assert!((a - b).abs() < 1e-12, "{key}: thread {a} vs virtual {b}");
        }
        assert_eq!(virtual_reg.counter("chaos.failures"), 1, "the fault fired");
        assert_eq!(virtual_reg.counter("chaos.checkpoints"), 4);
        assert!(virtual_reg.gauge("chaos.recovery_time").unwrap() > RESTART_OVERHEAD_SECS);
        // Exact induced-idle attribution exists only on the analytic
        // engine; the chaos run idles more than its clean counterfactual.
        assert!(virtual_reg.gauge("chaos.induced_idle_time").unwrap() > 0.0);
        assert_eq!(thread_reg.gauge("chaos.induced_idle_time"), Some(0.0));
    }

    #[test]
    fn chaos_off_checkpoint_is_free() {
        let model = CostModel::cray_xc30();
        let mut a = VirtualCluster::new(4, model);
        let mut b = VirtualCluster::new(4, model);
        for vc in [&mut a, &mut b] {
            vc.charge_uniform(KernelClass::Dot, 500_000, 64);
            vc.allreduce(8);
        }
        b.checkpoint();
        assert_eq!(a.time().to_bits(), b.time().to_bits());
        assert_eq!(a.report().critical, b.report().critical);
    }

    #[test]
    fn zero_intensity_chaos_changes_no_times() {
        use crate::chaos::ChaosSpec;
        let model = CostModel::cray_xc30();
        let script = |vc: &mut VirtualCluster| {
            for _ in 0..3 {
                vc.charge_per_rank(KernelClass::Dot, 64, |r| (r as u64 + 1) * 80_000);
                vc.iallreduce(16);
                vc.checkpoint();
            }
        };
        let mut clean = VirtualCluster::new(4, model);
        script(&mut clean);
        let mut chaotic = VirtualCluster::new(4, model);
        chaotic.enable_chaos(&ChaosSpec::default());
        script(&mut chaotic);
        assert_eq!(clean.time().to_bits(), chaotic.time().to_bits());
        let reg = chaotic.telemetry();
        assert_eq!(reg.counter("chaos.stalls"), 0);
        assert_eq!(reg.counter("chaos.checkpoints"), 3);
        assert_eq!(reg.gauge("chaos.induced_idle_time"), Some(0.0));
    }

    #[test]
    fn large_p_is_cheap_to_simulate() {
        let mut vc = VirtualCluster::new(12_288, CostModel::cray_xc30());
        for _ in 0..100 {
            vc.charge_uniform(KernelClass::Dot, 1000, 10);
            vc.allreduce(64);
        }
        assert_eq!(vc.report().critical.messages, 100 * 14);
        assert!(vc.time() > 0.0);
    }

    #[test]
    fn pooled_per_rank_charges_are_bitwise_identical_to_serial() {
        // Above PAR_RANK_MIN ranks the charge loop fans out over the
        // saco-par pool; each rank's arithmetic is untouched and writes
        // stay within its chunk, so every simulated quantity must match
        // the serial loop to the last bit at any thread count.
        let p = VirtualCluster::PAR_RANK_MIN * 2;
        let run = |threads: usize| {
            saco_par::set_threads(threads);
            let mut vc = VirtualCluster::new(p, CostModel::cray_xc30());
            vc.charge_per_rank(KernelClass::SparseGemm, 512, |r| (r as u64 % 97) * 1000);
            vc.charge_per_rank_ws(KernelClass::Dot, |r| ((r as u64 % 13) * 400, 64 + r as u64));
            vc.allreduce(256);
            saco_par::set_threads(1);
            (vc.clocks.clone(), vc.comp.clone(), vc.flops.clone(), {
                let mut t = saco_telemetry::PhaseTable::new();
                for rt in &vc.telemetry {
                    t.merge(&rt.phases);
                }
                t
            })
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn single_rank_has_no_comm() {
        let mut vc = VirtualCluster::new(1, CostModel::cray_xc30());
        vc.allreduce(1000);
        assert_eq!(vc.time(), 0.0);
        assert_eq!(vc.report().critical.messages, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut vc = VirtualCluster::new(4, CostModel::cray_xc30());
        vc.charge_uniform(KernelClass::Gemm, 1_000_000, 10);
        vc.allreduce(10);
        vc.reset();
        assert_eq!(vc.time(), 0.0);
        assert_eq!(vc.report().critical, CostCounters::default());
        assert!(vc.telemetry().rank_tables().is_empty());
    }

    #[test]
    fn telemetry_reconciles_with_report() {
        use saco_telemetry::Phase;
        let mut vc = VirtualCluster::new(4, CostModel::cray_xc30());
        vc.charge_per_rank_phase(
            KernelClass::SparseGemm,
            256,
            |r| (r as u64 + 1) * 300_000,
            Phase::Gram,
        );
        vc.charge_uniform_phase(KernelClass::Gemm, 200_000, 128, Phase::Prox);
        vc.charge_uniform_phase(KernelClass::Dot, 40_000, 64, Phase::Sampling);
        vc.allreduce(16);
        let reg = vc.telemetry();
        let rep = vc.report();
        let critical = reg.critical_rank().expect("ranks attributed");
        let table = reg.phases(critical).unwrap();
        assert!((table.comp_time() - rep.critical.comp_time).abs() < 1e-12);
        assert!((table.comm_time() - rep.critical.comm_time).abs() < 1e-12);
        assert!((table.idle_time() - rep.critical.idle_time).abs() < 1e-12);
        assert_eq!(reg.counter("collectives.allreduce"), 1);
        assert_eq!(reg.meta()["engine"], "virtual_cluster");
        // the same phase-labelled charges land under their labels
        assert!(table.time(Phase::Gram) > 0.0);
        assert!(table.time(Phase::Prox) > 0.0);
        assert!(table.time(Phase::Sampling) > 0.0);
    }

    #[test]
    fn both_engines_feed_the_same_sink_identically() {
        use saco_telemetry::Phase;
        let model = CostModel::cray_xc30();
        let p = 4;
        let (_, thread_reg) = ThreadMachine::run_telemetry(p, model, |comm| {
            comm.charge_flops_phase(
                KernelClass::Dot,
                (comm.rank() as u64 + 1) * 100_000,
                64,
                Phase::Gram,
            );
            let mut buf = vec![1.0; 16];
            comm.allreduce_sum(&mut buf);
        });
        let mut vc = VirtualCluster::new(p, model);
        vc.charge_per_rank_phase(
            KernelClass::Dot,
            64,
            |r| (r as u64 + 1) * 100_000,
            Phase::Gram,
        );
        vc.allreduce(16);
        let virtual_reg = vc.telemetry();
        for rank in 0..p {
            let t = thread_reg.phases(rank).unwrap();
            let v = virtual_reg.phases(rank).unwrap();
            for phase in Phase::ALL {
                assert!(
                    (t.time(phase) - v.time(phase)).abs() < 1e-12,
                    "rank {rank} phase {phase}: thread {} vs virtual {}",
                    t.time(phase),
                    v.time(phase)
                );
                assert_eq!(
                    t.get(phase).words,
                    v.get(phase).words,
                    "rank {rank} {phase}"
                );
                assert_eq!(
                    t.get(phase).flops,
                    v.get(phase).flops,
                    "rank {rank} {phase}"
                );
            }
        }
        assert_eq!(
            thread_reg.counter("collectives.allreduce"),
            virtual_reg.counter("collectives.allreduce")
        );
    }

    #[test]
    fn fused_overlap_costs_max_of_comp_and_comm() {
        // Comp shorter than the in-flight collective: the overlapped
        // window is hidden, only the remainder is visible comm.
        let model = CostModel::cray_xc30();
        let words = 1000u64;
        let cost = model.fused_allreduce_charge(4, words).time;
        let mut vc = VirtualCluster::new(4, model);
        vc.iallreduce_start(words);
        let comp = cost / 2.0;
        let flops = (comp * model.dot_rate).round() as u64;
        vc.charge_uniform(KernelClass::Dot, flops, 10);
        vc.iallreduce_wait();
        let rep = vc.report();
        assert!((vc.time() - cost).abs() < 1e-12, "time = max(comp, comm)");
        assert!((rep.critical.comm_time - (cost - rep.critical.comp_time)).abs() < 1e-12);
        assert!(rep.critical.idle_time.abs() < 1e-15);
        assert!((vc.overlap_hidden_time() - rep.critical.comp_time).abs() < 1e-12);

        // Comp longer than the collective: comm is fully hidden.
        let mut vc = VirtualCluster::new(4, model);
        vc.iallreduce_start(words);
        vc.charge_uniform(KernelClass::Dot, 4 * flops, 10);
        vc.iallreduce_wait();
        let rep = vc.report();
        assert!((vc.time() - rep.critical.comp_time).abs() < 1e-12);
        assert!(rep.critical.comm_time.abs() < 1e-15, "comm fully hidden");
        assert!((vc.overlap_hidden_time() - cost).abs() < 1e-12);
    }

    #[test]
    fn fused_no_overlap_matches_blocking_shape() {
        // start immediately followed by wait: idle accounting (waiting
        // for stragglers) is identical in shape to the blocking
        // collective; only the charge formula differs.
        let model = CostModel::cray_xc30();
        let mut vc = VirtualCluster::new(4, model);
        vc.charge_per_rank(KernelClass::Dot, 10, |r| (r as u64 + 1) * 1_200_000);
        vc.iallreduce(64);
        let rep = vc.report();
        let charge = model.fused_allreduce_charge(4, 64);
        assert_eq!(rep.critical.messages, charge.rounds);
        assert_eq!(rep.critical.words, charge.words_moved);
        assert!(rep.critical.idle_time < 1e-15, "critical rank never waits");
        assert!((rep.critical.comm_time - charge.time).abs() < 1e-15);
        assert_eq!(vc.words_packed(), 64);
        assert_eq!(vc.overlap_hidden_time(), 0.0, "nothing overlapped");
    }

    #[test]
    fn fused_engines_agree_with_overlap() {
        // The same SPMD script — including overlapped fused allreduces —
        // on both engines must produce identical counters and telemetry.
        let model = CostModel::cray_xc30();
        let p = 8;
        let (_, thread_report, thread_reg) =
            ThreadMachine::run_report_telemetry(p, model, |comm| {
                for _ in 0..5 {
                    comm.charge_flops(KernelClass::Dot, (comm.rank() as u64 + 1) * 100_000, 64);
                    let mut buf = vec![1.0; 16];
                    let req = comm.iallreduce_sum_start(&mut buf);
                    comm.charge_flops(KernelClass::Vector, 50_000, 64);
                    comm.iallreduce_wait(req);
                }
            });
        let mut vc = VirtualCluster::new(p, model);
        for _ in 0..5 {
            vc.charge_per_rank(KernelClass::Dot, 64, |r| (r as u64 + 1) * 100_000);
            vc.iallreduce_start(16);
            vc.charge_uniform(KernelClass::Vector, 50_000, 64);
            vc.iallreduce_wait();
        }
        let virtual_report = vc.report();
        let t = thread_report.critical;
        let v = virtual_report.critical;
        assert!((t.total_time() - v.total_time()).abs() < 1e-12);
        assert_eq!(t.messages, v.messages);
        assert_eq!(t.words, v.words);
        assert!((t.comm_time - v.comm_time).abs() < 1e-12);
        assert!((t.comp_time - v.comp_time).abs() < 1e-12);
        assert!((t.idle_time - v.idle_time).abs() < 1e-12);
        let virtual_reg = vc.telemetry();
        assert_eq!(
            thread_reg.counter("comm.words_packed"),
            virtual_reg.counter("comm.words_packed")
        );
        assert_eq!(thread_reg.counter("comm.words_packed"), 5 * 16);
        let th = thread_reg.gauge("comm.overlap_hidden_time").expect("gauge");
        let vh = virtual_reg
            .gauge("comm.overlap_hidden_time")
            .expect("gauge");
        assert!((th - vh).abs() < 1e-12, "hidden time: {th} vs {vh}");
        assert!(th > 0.0, "overlap actually hid time");
    }

    #[test]
    fn fused_moves_fewer_words_than_blocking_tree() {
        let model = CostModel::cray_xc30();
        let (p, w) = (1024, 592u64);
        let mut tree = VirtualCluster::new(p, model);
        tree.allreduce(w);
        let mut fused = VirtualCluster::new(p, model);
        fused.iallreduce(w);
        let (tw, fw) = (tree.report().critical.words, fused.report().critical.words);
        assert_eq!(
            tree.report().critical.messages,
            fused.report().critical.messages,
            "latency rounds unchanged"
        );
        assert!(
            tw as f64 / fw as f64 >= 1.8,
            "words reduction {tw}/{fw} below the acceptance bar"
        );
        assert!(fused.time() <= tree.time());
    }

    #[test]
    #[should_panic(expected = "one fused allreduce")]
    fn two_outstanding_iallreduces_panic() {
        let mut vc = VirtualCluster::new(4, CostModel::cray_xc30());
        vc.iallreduce_start(8);
        vc.iallreduce_start(8);
    }

    #[test]
    fn latency_reduction_by_s_shows_up() {
        // The core SA effect at the machine level: s unit-word allreduces
        // cost ~s× one s²-word allreduce while latency dominates.
        let model = CostModel::cray_xc30();
        let s = 16u64;
        let mut non_sa = VirtualCluster::new(1024, model);
        for _ in 0..s {
            non_sa.allreduce(1);
        }
        let mut sa = VirtualCluster::new(1024, model);
        sa.allreduce(s * s);
        let speedup = non_sa.time() / sa.time();
        assert!(speedup > 4.0, "communication speedup only {speedup}");
        assert!(speedup < s as f64 + 0.5);
    }
}
