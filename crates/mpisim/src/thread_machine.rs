//! The thread-backed SPMD engine: real ranks, real messages.
//!
//! One OS thread per rank, a dedicated crossbeam channel per ordered rank
//! pair (so message matching is trivially deterministic: per-pair FIFO),
//! and binomial-tree collectives that combine contributions in a fixed
//! order — repeated runs are bit-identical.
//!
//! Each rank carries a virtual clock and cost counters. Data movement is
//! physical; *time* is simulated with the same [`CostModel`] formulas the
//! virtual engine uses, so small thread-machine runs validate the
//! large-scale virtual runs.

use crate::chaos::{ChaosPlan, ChaosSpec, RESTART_OVERHEAD_SECS};
use crate::cost::{CollectiveKind, CostCounters, CostModel, KernelClass};
use crate::telemetry_support::{kind_slot, registry_from_ranks, RankTelemetry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use saco_telemetry::{Phase, PhaseTable, Registry};

/// A message carrying payload and the sender's virtual clock.
struct Packet {
    clock: f64,
    data: Vec<f64>,
}

/// Handle to an in-flight nonblocking allreduce started with
/// [`Comm::iallreduce_sum_start`]. Carries the virtual-time bookkeeping
/// (entry clock, latest participant, payload size) needed to settle the
/// charge at [`Comm::iallreduce_wait`]; until then the reduction is
/// logically in flight and its buffer must not be read.
#[must_use = "an iallreduce must be completed with iallreduce_wait"]
pub struct IallreduceRequest {
    entry: f64,
    max_entry: f64,
    words: u64,
    /// Injected latency jitter drawn at start (0 without chaos), settled
    /// into the charge at wait.
    jitter: f64,
}

/// This rank's live chaos-injection state (see [`crate::chaos`]): its
/// fixed skew multiplier plus the per-rank counters that key the
/// stateless schedule draws. Every rank counts its own collectives in
/// program order, so identical SPMD code yields identical indices — the
/// same schedule the virtual cluster replays.
struct CommChaos {
    plan: ChaosPlan,
    skew: f64,
    collective_idx: u64,
    ckpt_idx: usize,
    last_ckpt_clock: f64,
    failed: bool,
}

/// One rank's handle to the machine: rank id, channels to every peer, a
/// virtual clock and cost counters.
pub struct Comm {
    rank: usize,
    size: usize,
    model: CostModel,
    to: Vec<Sender<Packet>>,
    from: Vec<Receiver<Packet>>,
    clock: f64,
    counters: CostCounters,
    comp_by_class: [f64; 4],
    telemetry: RankTelemetry,
    chaos: Option<CommChaos>,
}

impl Comm {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine's cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Current virtual time on this rank.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Switch on deterministic chaos injection for this rank (see
    /// [`crate::chaos`]). Call at the top of the SPMD closure, before any
    /// charging: every rank must enable the same spec, and the draws are
    /// keyed by `(seed, rank, program-order index)`, so the injected
    /// schedule is identical to the virtual cluster's for the same spec.
    /// Chaos perturbs charged *time* only; payload data is untouched.
    pub fn enable_chaos(&mut self, spec: &ChaosSpec) {
        let plan = ChaosPlan::new(spec);
        self.chaos = Some(CommChaos {
            skew: plan.skew_mult(self.rank),
            plan,
            collective_idx: 0,
            ckpt_idx: 0,
            last_ckpt_clock: self.clock,
            failed: false,
        });
        self.telemetry.chaos.enabled = true;
    }

    /// Whether chaos injection is enabled on this rank.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos.is_some()
    }

    /// Block-boundary checkpoint: a free no-op on clean runs. With chaos
    /// enabled it marks a recovery point; if this rank's fail-stop fault
    /// fires at this block, the rank pays the redo time back to the
    /// previous checkpoint plus
    /// [`RESTART_OVERHEAD_SECS`](crate::chaos::RESTART_OVERHEAD_SECS).
    /// Recovery recomputes deterministic work, so numerics are untouched.
    pub fn checkpoint(&mut self) {
        let Some(ch) = &mut self.chaos else {
            return;
        };
        let step = ch.ckpt_idx;
        ch.ckpt_idx += 1;
        self.telemetry.chaos.checkpoints += 1;
        if !ch.failed && ch.plan.fails_at(self.rank, step) {
            ch.failed = true;
            let redo = self.clock - ch.last_ckpt_clock;
            let recovery = redo + RESTART_OVERHEAD_SECS;
            self.clock += recovery;
            self.counters.idle_time += recovery;
            self.telemetry.phases.record(Phase::Idle, recovery);
            self.telemetry.chaos.failures += 1;
            self.telemetry.chaos.recovery_time += recovery;
        }
        ch.last_ckpt_clock = self.clock;
    }

    /// Per-collective chaos injection for the next collective in this
    /// rank's program order: a transient stall advances the clock (as
    /// idle) *before* the entry snapshot — so it propagates through the
    /// tree's entry-clock piggyback exactly like any late arrival — and
    /// the returned jitter joins the collective's charged cost (identical
    /// on every rank: the draw is program-order keyed). 0 when chaos is
    /// off.
    fn chaos_collective_entry(&mut self) -> f64 {
        let Some(ch) = &mut self.chaos else {
            return 0.0;
        };
        let idx = ch.collective_idx;
        ch.collective_idx += 1;
        let stall = ch.plan.stall(self.rank, idx);
        if stall > 0.0 {
            self.clock += stall;
            self.counters.idle_time += stall;
            self.telemetry.phases.record(Phase::Idle, stall);
            self.telemetry.chaos.stalls += 1;
            self.telemetry.chaos.stall_time += stall;
        }
        ch.plan.jitter(idx)
    }

    /// Cost counters accumulated so far on this rank.
    pub fn counters(&self) -> CostCounters {
        self.counters
    }

    /// Charge local computation: `flops` of `class` with a working set of
    /// `working_set_words`. Advances this rank's clock only. Attributed to
    /// the generic `comp` phase; use
    /// [`charge_flops_phase`](Self::charge_flops_phase) for a finer label.
    pub fn charge_flops(&mut self, class: KernelClass, flops: u64, working_set_words: u64) {
        self.charge_flops_phase(class, flops, working_set_words, Phase::Comp);
    }

    /// Like [`charge_flops`](Self::charge_flops), attributing the time to
    /// a specific telemetry phase (`gram`, `prox`, `sampling`, …). The
    /// cost charged is identical; only the attribution label differs, so
    /// phase totals always reconcile with [`CostCounters`].
    pub fn charge_flops_phase(
        &mut self,
        class: KernelClass,
        flops: u64,
        working_set_words: u64,
        phase: Phase,
    ) {
        let t = self.model.compute_time(class, flops, working_set_words);
        let t = match &self.chaos {
            Some(ch) => {
                let tr = t * ch.skew;
                self.telemetry.chaos.skew_time += tr - t;
                tr
            }
            None => t,
        };
        self.clock += t;
        self.counters.comp_time += t;
        self.comp_by_class[crate::cost::class_index(class)] += t;
        self.counters.flops += flops;
        self.telemetry.phases.record_full(phase, t, 0, flops);
    }

    /// This rank's per-phase time attribution so far.
    pub fn phase_table(&self) -> &PhaseTable {
        &self.telemetry.phases
    }

    /// Compute time per kernel class (indexed by [`crate::cost::class_index`]).
    pub fn comp_by_class(&self) -> [f64; 4] {
        self.comp_by_class
    }

    /// Point-to-point send. Transfer cost is charged on the receiving side
    /// (the receive completes at `sender_clock + α + β·w`).
    pub fn send(&mut self, dst: usize, data: &[f64]) {
        assert!(dst < self.size && dst != self.rank, "bad destination {dst}");
        self.counters.messages += 1;
        self.counters.words += data.len() as u64;
        self.telemetry.collectives[kind_slot(CollectiveKind::PointToPoint)] += 1;
        // the transfer's time lands on the receiving side; only volume here
        self.telemetry
            .phases
            .record_full(Phase::Comm, 0.0, data.len() as u64, 0);
        self.to[dst]
            .send(Packet {
                clock: self.clock,
                data: data.to_vec(),
            })
            .expect("peer rank hung up");
    }

    /// Blocking point-to-point receive from `src` (per-pair FIFO order).
    pub fn recv(&mut self, src: usize) -> Vec<f64> {
        assert!(src < self.size && src != self.rank, "bad source {src}");
        let pkt = self.from[src].recv().expect("peer rank hung up");
        let cost = self.model.alpha + self.model.beta * pkt.data.len() as f64;
        let arrival = pkt.clock + cost;
        if arrival > self.clock {
            let comm = cost.min(arrival - self.clock);
            let idle = arrival - self.clock - comm;
            self.counters.idle_time += idle;
            self.counters.comm_time += comm;
            self.telemetry.phases.record_full(Phase::Comm, comm, 0, 0);
            if idle > 0.0 {
                self.telemetry.phases.record(Phase::Idle, idle);
            }
            self.clock = arrival;
        }
        pkt.data
    }

    // --- internal tree plumbing (no cost charging; collectives charge the
    //     analytic formula so both engines agree exactly) -----------------

    fn tree_send(&mut self, dst: usize, clock: f64, data: Vec<f64>) {
        self.to[dst]
            .send(Packet { clock, data })
            .expect("peer rank hung up");
    }

    fn tree_recv(&mut self, src: usize) -> Packet {
        self.from[src].recv().expect("peer rank hung up")
    }

    /// Reduce `buf` by summation onto rank 0, also computing the max entry
    /// clock of the participants. Fixed binomial-tree order: at distance
    /// `d`, rank `r` with `r % 2d == 0` receives from `r + d` and adds the
    /// partner's partial sum *after* its own (deterministic association).
    fn tree_reduce_sum(&mut self, buf: &mut [f64], entry_clock: f64) -> f64 {
        let mut max_clock = entry_clock;
        let mut d = 1;
        while d < self.size {
            if self.rank.is_multiple_of(2 * d) {
                let partner = self.rank + d;
                if partner < self.size {
                    let pkt = self.tree_recv(partner);
                    max_clock = max_clock.max(pkt.clock);
                    for (b, v) in buf.iter_mut().zip(&pkt.data) {
                        *b += v;
                    }
                }
            } else if self.rank % (2 * d) == d {
                let partner = self.rank - d;
                self.tree_send(partner, max_clock, buf.to_vec());
                return max_clock; // non-roots are done after sending up
            }
            d *= 2;
        }
        max_clock
    }

    /// Broadcast `buf` (and a clock value) down the same binomial tree.
    fn tree_bcast(&mut self, buf: &mut Vec<f64>) -> f64 {
        // Find the highest power-of-two distance.
        let mut top = 1;
        while top < self.size {
            top *= 2;
        }
        let mut clock = self.clock;
        // Non-roots first receive from their parent.
        if self.rank != 0 {
            // parent strips the lowest set bit
            let parent = self.rank & (self.rank - 1);
            let pkt = self.tree_recv(parent);
            clock = pkt.clock;
            *buf = pkt.data;
        }
        // Then forward to children: rank r owns children r + d for d
        // descending below the lowest set bit of r (or below top for 0).
        let lowest = if self.rank == 0 {
            top
        } else {
            self.rank & self.rank.wrapping_neg()
        };
        let mut d = lowest / 2;
        while d >= 1 {
            let child = self.rank + d;
            if child < self.size {
                self.tree_send(child, clock, buf.clone());
            }
            if d == 0 {
                break;
            }
            d /= 2;
        }
        clock
    }

    /// Account a finished collective: everyone leaves at
    /// `max_entry + cost`, having waited `max_entry − entry` and paid
    /// `cost` of communication. `jitter` is the injected extra latency
    /// from [`chaos_collective_entry`](Self::chaos_collective_entry)
    /// (0 on clean runs); it is identical on every rank, so all ranks
    /// still leave at the same clock.
    fn account_collective(
        &mut self,
        kind: CollectiveKind,
        words: u64,
        entry_clock: f64,
        max_entry: f64,
        jitter: f64,
    ) {
        let charge = self.model.collective_charge(kind, self.size, words);
        let cost = charge.time + jitter;
        self.telemetry.chaos.jitter_time += jitter;
        self.counters.messages += charge.rounds;
        self.counters.words += charge.words_moved;
        self.counters.idle_time += max_entry - entry_clock;
        self.counters.comm_time += cost;
        self.clock = max_entry + cost;
        self.telemetry.collectives[kind_slot(kind)] += 1;
        self.telemetry
            .phases
            .record_full(Phase::Comm, cost, charge.words_moved, 0);
        self.telemetry
            .phases
            .record(Phase::Idle, max_entry - entry_clock);
    }

    /// Allreduce with summation, in place. Deterministic: the result is
    /// identical on all ranks and across runs.
    pub fn allreduce_sum(&mut self, buf: &mut Vec<f64>) {
        if self.size == 1 {
            return;
        }
        let jitter = self.chaos_collective_entry();
        let entry = self.clock;
        let max_up = self.tree_reduce_sum(buf, entry);
        // Root now has the sum and the max entry clock; broadcast both.
        let mut payload = if self.rank == 0 {
            let mut p = buf.clone();
            p.push(max_up);
            p
        } else {
            Vec::new()
        };
        if self.rank == 0 {
            self.clock = max_up; // so tree_bcast sends the right clock
        }
        let _ = self.tree_bcast(&mut payload);
        let max_entry = payload.pop().expect("clock element present");
        *buf = payload;
        self.account_collective(
            CollectiveKind::Allreduce,
            buf.len() as u64,
            entry,
            max_entry,
            jitter,
        );
    }

    /// Start a **nonblocking fused allreduce** of `buf` (summation, in
    /// place). The payload is one contiguous buffer — the solvers pack
    /// Gram triangle + cross terms + scalars into it — so the machine
    /// charges the segment-pipelined
    /// [`fused_allreduce_charge`](CostModel::fused_allreduce_charge):
    /// same `⌈log₂P⌉` latency rounds as the blocking tree, but only
    /// `2·w·(P−1)/P` words on the critical path.
    ///
    /// The reduced values are not valid until [`iallreduce_wait`]
    /// consumes the returned request; computation charged between start
    /// and wait overlaps the in-flight reduction (virtual time advances
    /// by `max(comp, comm)`, not their sum). Deterministic: the data
    /// exchange is the same fixed binomial tree as
    /// [`allreduce_sum`](Self::allreduce_sum), so results are bitwise
    /// identical to the blocking path, on every rank, with any amount of
    /// overlapped work.
    ///
    /// [`iallreduce_wait`]: Self::iallreduce_wait
    pub fn iallreduce_sum_start(&mut self, buf: &mut Vec<f64>) -> IallreduceRequest {
        if self.size == 1 {
            let entry = self.clock;
            return IallreduceRequest {
                entry,
                max_entry: entry,
                words: 0,
                jitter: 0.0,
            };
        }
        // Stall + jitter draw at start — entry is when ranks join — so a
        // stalled rank's late entry piggybacks through the tree exactly
        // like any straggler's.
        let jitter = self.chaos_collective_entry();
        let entry = self.clock;
        let words = buf.len() as u64;
        // Physically exchange now (the payload is fixed at start); the
        // virtual-time charge settles at wait. Same tree, same order, same
        // clock piggyback as the blocking allreduce.
        let max_up = self.tree_reduce_sum(buf, entry);
        let mut payload = if self.rank == 0 {
            let mut p = buf.clone();
            p.push(max_up);
            p
        } else {
            Vec::new()
        };
        let _ = self.tree_bcast(&mut payload);
        let max_entry = payload.pop().expect("clock element present");
        *buf = payload;
        IallreduceRequest {
            entry,
            max_entry,
            words,
            jitter,
        }
    }

    /// Complete a nonblocking allreduce: the collective finishes at
    /// `max_entry + cost`; this rank leaves at
    /// `max(arrival, completion)`. Of the remaining in-flight window only
    /// `min(cost, completion − arrival)` is charged as communication (the
    /// rest is idle), and the portion that computation already covered is
    /// recorded as hidden time — the `comm.overlap_hidden_time` gauge.
    pub fn iallreduce_wait(&mut self, req: IallreduceRequest) {
        if self.size == 1 {
            return;
        }
        let charge = self.model.fused_allreduce_charge(self.size, req.words);
        let cost = charge.time + req.jitter;
        self.telemetry.chaos.jitter_time += req.jitter;
        let completion = req.max_entry + cost;
        let arrival = self.clock;
        let visible = (completion - arrival).max(0.0);
        let comm = cost.min(visible);
        let idle = visible - comm;
        let hidden = (arrival.min(completion) - req.entry).max(0.0);
        self.counters.messages += charge.rounds;
        self.counters.words += charge.words_moved;
        self.counters.comm_time += comm;
        self.counters.idle_time += idle;
        self.clock = arrival.max(completion);
        self.telemetry.collectives[kind_slot(CollectiveKind::Allreduce)] += 1;
        self.telemetry
            .phases
            .record_full(Phase::Comm, comm, charge.words_moved, 0);
        self.telemetry.phases.record(Phase::Idle, idle);
        self.telemetry.words_packed += req.words;
        self.telemetry.hidden_time += hidden;
    }

    /// Blocking fused allreduce: [`iallreduce_sum_start`] immediately
    /// completed by [`iallreduce_wait`] — the `--overlap off` comm path.
    /// Identical wire format and charge; zero overlap.
    ///
    /// [`iallreduce_sum_start`]: Self::iallreduce_sum_start
    /// [`iallreduce_wait`]: Self::iallreduce_wait
    pub fn iallreduce_sum(&mut self, buf: &mut Vec<f64>) {
        let req = self.iallreduce_sum_start(buf);
        self.iallreduce_wait(req);
    }

    /// Allreduce of a single scalar by summation.
    pub fn allreduce_scalar(&mut self, v: f64) -> f64 {
        let mut buf = vec![v];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Scalar summation on the fused comm path (same wire values as
    /// [`allreduce_scalar`](Self::allreduce_scalar), fused pipelined
    /// charge). The solvers route their bookkeeping reductions through
    /// this so every collective in a solve scales words uniformly.
    pub fn iallreduce_scalar(&mut self, v: f64) -> f64 {
        let mut buf = vec![v];
        self.iallreduce_sum(&mut buf);
        buf[0]
    }

    /// Allreduce with max.
    pub fn allreduce_max(&mut self, v: f64) -> f64 {
        if self.size == 1 {
            return v;
        }
        let jitter = self.chaos_collective_entry();
        // Encode max-reduction as a sum-reduction on a 1-hot basis is not
        // possible; do a dedicated tree pass: reduce max to root, bcast.
        let entry = self.clock;
        let mut d = 1;
        let mut m = v;
        let mut max_clock = entry;
        let mut is_root_path = true;
        while d < self.size {
            if self.rank.is_multiple_of(2 * d) {
                let partner = self.rank + d;
                if partner < self.size {
                    let pkt = self.tree_recv(partner);
                    max_clock = max_clock.max(pkt.clock);
                    m = m.max(pkt.data[0]);
                }
            } else if self.rank % (2 * d) == d {
                self.tree_send(self.rank - d, max_clock, vec![m]);
                is_root_path = false;
                break;
            }
            d *= 2;
        }
        let _ = is_root_path;
        let mut payload = if self.rank == 0 {
            vec![m, max_clock]
        } else {
            Vec::new()
        };
        if self.rank == 0 {
            self.clock = max_clock;
        }
        let _ = self.tree_bcast(&mut payload);
        let max_entry = payload[1];
        self.account_collective(CollectiveKind::Allreduce, 1, entry, max_entry, jitter);
        payload[0]
    }

    /// Barrier: an empty allreduce.
    pub fn barrier(&mut self) {
        if self.size == 1 {
            return;
        }
        let jitter = self.chaos_collective_entry();
        let entry = self.clock;
        let max_up = self.tree_reduce_sum(&mut [], entry);
        let mut payload = if self.rank == 0 {
            vec![max_up]
        } else {
            Vec::new()
        };
        if self.rank == 0 {
            self.clock = max_up;
        }
        let _ = self.tree_bcast(&mut payload);
        let max_entry = payload[0];
        self.account_collective(CollectiveKind::Barrier, 0, entry, max_entry, jitter);
    }

    /// Broadcast `buf` from `root` to all ranks (rank-rotated tree).
    pub fn bcast(&mut self, buf: &mut Vec<f64>, root: usize) {
        assert!(root < self.size, "bad root {root}");
        if self.size == 1 {
            return;
        }
        assert_eq!(
            root, 0,
            "this machine implements root-0 broadcast; rotate ranks if needed"
        );
        let jitter = self.chaos_collective_entry();
        let entry = self.clock;
        let mut payload = if self.rank == 0 {
            let mut p = buf.clone();
            p.push(self.clock);
            p
        } else {
            Vec::new()
        };
        let _ = self.tree_bcast(&mut payload);
        let root_clock = payload.pop().expect("clock element present");
        if self.rank != 0 {
            *buf = payload;
        }
        // For a bcast the completion time is root_clock + cost, but a rank
        // that entered later leaves at max(entry, ...); account idle
        // relative to the root's clock.
        let max_entry = root_clock.max(entry);
        self.account_collective(
            CollectiveKind::Bcast,
            buf.len() as u64,
            entry,
            max_entry,
            jitter,
        );
    }

    /// Gather every rank's (equal-length) contribution onto all ranks,
    /// concatenated in rank order.
    pub fn allgather(&mut self, local: &[f64]) -> Vec<f64> {
        if self.size == 1 {
            return local.to_vec();
        }
        // Implemented as a sum-allreduce of a rank-strided buffer: simple,
        // deterministic, and the cost charged matches an allgather of the
        // full concatenated payload (Table I charges word counts, and the
        // concatenated size is what crosses the top of the tree).
        let k = local.len();
        let mut buf = vec![0.0; k * self.size];
        buf[self.rank * k..(self.rank + 1) * k].copy_from_slice(local);
        self.allreduce_sum(&mut buf);
        buf
    }
}

/// The machine: spawns `p` ranks and runs the same SPMD closure on each.
pub struct ThreadMachine;

impl ThreadMachine {
    /// Run `f(rank_comm)` on `p` ranks; returns the per-rank results in
    /// rank order along with each rank's cost counters.
    ///
    /// ```
    /// use mpisim::{CostModel, ThreadMachine};
    /// let results = ThreadMachine::run(4, CostModel::cray_xc30(), |comm| {
    ///     let mut buf = vec![comm.rank() as f64];
    ///     comm.allreduce_sum(&mut buf);
    ///     buf[0]
    /// });
    /// // 0 + 1 + 2 + 3, replicated on every rank
    /// assert!(results.iter().all(|(v, _)| *v == 6.0));
    /// ```
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank panics.
    pub fn run<T, F>(p: usize, model: CostModel, f: F) -> Vec<(T, CostCounters)>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_full(p, model, f)
            .into_iter()
            .map(|(t, c, _)| (t, c))
            .collect()
    }

    /// Like [`run`](Self::run), additionally returning the merged
    /// telemetry registry: per-rank phase tables (keyed by rank) plus
    /// program-order collective counters, with
    /// `meta.engine = "thread_machine"`.
    pub fn run_telemetry<T, F>(
        p: usize,
        model: CostModel,
        f: F,
    ) -> (Vec<(T, CostCounters)>, Registry)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let full = Self::run_full(p, model, f);
        let rank_telemetry: Vec<RankTelemetry> = full.iter().map(|(_, _, rt)| rt.clone()).collect();
        let registry = registry_from_ranks("thread_machine", &rank_telemetry);
        (full.into_iter().map(|(t, c, _)| (t, c)).collect(), registry)
    }

    fn run_full<T, F>(p: usize, model: CostModel, f: F) -> Vec<(T, CostCounters, RankTelemetry)>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        assert!(p > 0, "need at least one rank");
        // Channel matrix: chans[src][dst].
        let mut senders: Vec<Vec<Sender<Packet>>> = Vec::with_capacity(p);
        let mut receivers: Vec<Vec<Option<Receiver<Packet>>>> = (0..p)
            .map(|_| (0..p).map(|_| None).collect::<Vec<_>>())
            .collect();
        for src in 0..p {
            let mut row = Vec::with_capacity(p);
            for dst in 0..p {
                let (tx, rx) = unbounded();
                row.push(tx);
                receivers[dst][src] = Some(rx);
            }
            senders.push(row);
        }
        let mut comms: Vec<Comm> = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (to, from_opts))| Comm {
                rank,
                size: p,
                model,
                to,
                from: from_opts
                    .into_iter()
                    .map(|r| r.expect("receiver wired"))
                    .collect(),
                clock: 0.0,
                counters: CostCounters::default(),
                comp_by_class: [0.0; 4],
                telemetry: RankTelemetry::default(),
                chaos: None,
            })
            .collect();

        if p == 1 {
            let mut c = comms.pop().expect("one comm");
            let out = f(&mut c);
            // Snap the comp counter to the phase-table sum so the report
            // and the telemetry registry read bitwise-identical numbers
            // and therefore always pick the same critical rank, even when
            // two ranks tie at ulp distance.
            c.counters.comp_time = c.telemetry.phases.comp_time();
            return vec![(out, c.counters, c.telemetry)];
        }

        // Each SPMD rank blocks on its channels mid-collective, so ranks
        // can never share a pooled worker: `scoped_map` gives every rank
        // its own OS thread (it is the pool crate's one explicitly
        // non-pooled primitive, kept there so all thread-spawning in the
        // workspace routes through `saco-par`).
        saco_par::scoped_map(comms, |_, mut c| {
            let out = f(&mut c);
            c.counters.comp_time = c.telemetry.phases.comp_time();
            (out, c.counters, c.telemetry)
        })
    }

    /// Convenience: run and return the critical-path cost report (the
    /// maximum-total-time rank's counters).
    pub fn run_report<T, F>(p: usize, model: CostModel, f: F) -> (Vec<T>, crate::CostReport)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let results = Self::run(p, model, f);
        // The critical path is the computational straggler's: all ranks
        // leave the final collective at the same clock, so totals tie at
        // ulp noise; comp_time identifies the rank everyone waited for.
        let critical = results
            .iter()
            .map(|(_, c)| *c)
            .enumerate()
            .max_by(|(i, a), (j, b)| {
                a.comp_time
                    .partial_cmp(&b.comp_time)
                    .expect("finite times")
                    .then(i.cmp(j))
            })
            .map(|(_, c)| c)
            .unwrap_or_default();
        (
            results.into_iter().map(|(t, _)| t).collect(),
            crate::CostReport { ranks: p, critical },
        )
    }

    /// Like [`run_report`](Self::run_report), additionally returning the
    /// merged telemetry registry. The registry's
    /// [`critical_rank`](Registry::critical_rank) picks the same rank as
    /// the report's critical path (both maximize comp time with ties
    /// toward the highest rank).
    pub fn run_report_telemetry<T, F>(
        p: usize,
        model: CostModel,
        f: F,
    ) -> (Vec<T>, crate::CostReport, Registry)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let (results, registry) = Self::run_telemetry(p, model, f);
        let critical = results
            .iter()
            .map(|(_, c)| *c)
            .enumerate()
            .max_by(|(i, a), (j, b)| {
                a.comp_time
                    .partial_cmp(&b.comp_time)
                    .expect("finite times")
                    .then(i.cmp(j))
            })
            .map(|(_, c)| c)
            .unwrap_or_default();
        (
            results.into_iter().map(|(t, _)| t).collect(),
            crate::CostReport { ranks: p, critical },
            registry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1, 2, 3, 4, 5, 8, 13] {
            let results = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0, 1.0];
                comm.allreduce_sum(&mut buf);
                buf
            });
            let expect0 = (p * (p + 1) / 2) as f64;
            for (r, _) in &results {
                assert_eq!(r[0], expect0, "p={p}");
                assert_eq!(r[1], p as f64);
            }
        }
    }

    #[test]
    fn allreduce_is_deterministic_including_fp_order() {
        let run = || {
            ThreadMachine::run(7, CostModel::cray_xc30(), |comm| {
                let mut buf = vec![0.1 * (comm.rank() as f64 + 1.0); 3];
                comm.allreduce_sum(&mut buf);
                buf
            })
        };
        let a = run();
        let b = run();
        for ((x, _), (y, _)) in a.iter().zip(&b) {
            assert_eq!(x, y, "bitwise identical across runs");
        }
        // and identical across ranks within one run
        for (x, _) in &a {
            assert_eq!(x, &a[0].0);
        }
    }

    #[test]
    fn allreduce_max_works() {
        let results = ThreadMachine::run(6, CostModel::cray_xc30(), |comm| {
            comm.allreduce_max((comm.rank() as f64 - 2.5).abs())
        });
        for (r, _) in &results {
            assert_eq!(*r, 2.5);
        }
    }

    #[test]
    fn bcast_from_root() {
        let results = ThreadMachine::run(5, CostModel::cray_xc30(), |comm| {
            let mut buf = if comm.rank() == 0 {
                vec![3.0, 1.0, 4.0]
            } else {
                Vec::new()
            };
            comm.bcast(&mut buf, 0);
            buf
        });
        for (r, _) in &results {
            assert_eq!(r, &vec![3.0, 1.0, 4.0]);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let results = ThreadMachine::run(4, CostModel::cray_xc30(), |comm| {
            comm.allgather(&[comm.rank() as f64, 10.0 * comm.rank() as f64])
        });
        for (r, _) in &results {
            assert_eq!(r, &vec![0.0, 0.0, 1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        }
    }

    #[test]
    fn point_to_point_ring() {
        let results = ThreadMachine::run(4, CostModel::cray_xc30(), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, &[comm.rank() as f64]);
            comm.recv(prev)[0]
        });
        assert_eq!(
            results.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![3.0, 0.0, 1.0, 2.0]
        );
    }

    #[test]
    fn clocks_advance_with_collectives_and_flops() {
        let model = CostModel::cray_xc30();
        let results = ThreadMachine::run(4, model, |comm| {
            comm.charge_flops(KernelClass::Dot, 1_200_000, 100);
            let mut buf = vec![1.0; 8];
            comm.allreduce_sum(&mut buf);
            comm.clock()
        });
        let expect =
            1_200_000.0 / model.dot_rate + model.collective_time(CollectiveKind::Allreduce, 4, 8);
        for (t, c) in &results {
            assert!((t - expect).abs() < 1e-12, "clock {t} vs {expect}");
            assert_eq!(c.flops, 1_200_000);
            assert_eq!(c.messages, 2); // 2 rounds on 4 ranks
            assert_eq!(c.words, 16);
        }
    }

    #[test]
    fn straggler_shows_up_as_idle_time() {
        let model = CostModel::cray_xc30();
        let results = ThreadMachine::run(2, model, |comm| {
            if comm.rank() == 1 {
                comm.charge_flops(KernelClass::Dot, 12_000_000, 100); // 10 ms straggler
            }
            let mut buf = vec![0.0];
            comm.allreduce_sum(&mut buf);
            comm.counters()
        });
        let (fast, slow) = (&results[0].0, &results[1].0);
        assert!(fast.idle_time > 9e-3, "rank 0 waited: {}", fast.idle_time);
        assert!(
            slow.idle_time < 1e-9,
            "rank 1 never waited: {}",
            slow.idle_time
        );
        // both leave the collective at the same clock
        let t0 = results[0].0.total_time();
        let t1 = results[1].0.total_time();
        assert!((t0 - t1).abs() < 1e-12);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let results = ThreadMachine::run(3, CostModel::cray_xc30(), |comm| {
            comm.charge_flops(
                KernelClass::Vector,
                (comm.rank() as u64 + 1) * 2_000_000,
                10,
            );
            comm.barrier();
            comm.clock()
        });
        let clocks: Vec<f64> = results.iter().map(|(t, _)| *t).collect();
        assert!((clocks[0] - clocks[1]).abs() < 1e-12);
        assert!((clocks[1] - clocks[2]).abs() < 1e-12);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let results = ThreadMachine::run(1, CostModel::cray_xc30(), |comm| {
            let mut buf = vec![5.0];
            comm.allreduce_sum(&mut buf);
            comm.barrier();
            (buf[0], comm.clock())
        });
        assert_eq!(results[0].0 .0, 5.0);
        assert_eq!(results[0].0 .1, 0.0);
    }

    #[test]
    fn run_report_picks_critical_path() {
        let (_, report) = ThreadMachine::run_report(4, CostModel::cray_xc30(), |comm| {
            comm.charge_flops(KernelClass::Dot, (comm.rank() as u64 + 1) * 1_000_000, 10);
            let mut b = vec![0.0];
            comm.allreduce_sum(&mut b);
        });
        assert_eq!(report.ranks, 4);
        assert!(report.running_time() > 0.0);
        // the critical rank is the slowest (rank 3): it has 4 Mflops
        assert_eq!(report.critical.flops, 4_000_000);
    }

    #[test]
    fn telemetry_phases_reconcile_with_counters() {
        let (results, registry) = ThreadMachine::run_telemetry(4, CostModel::cray_xc30(), |comm| {
            comm.charge_flops_phase(KernelClass::SparseGemm, 500_000, 256, Phase::Gram);
            comm.charge_flops_phase(
                KernelClass::Gemm,
                (comm.rank() as u64 + 1) * 200_000,
                128,
                Phase::Prox,
            );
            comm.charge_flops(KernelClass::Vector, 50_000, 64);
            let mut buf = vec![1.0; 8];
            comm.allreduce_sum(&mut buf);
            comm.barrier();
        });
        for (rank, (_, counters)) in results.iter().enumerate() {
            let table = registry.phases(rank).expect("rank attributed");
            assert!(
                (table.comm_time() - counters.comm_time).abs() < 1e-12,
                "rank {rank} comm: {} vs {}",
                table.comm_time(),
                counters.comm_time
            );
            assert!(
                (table.comp_time() - counters.comp_time).abs() < 1e-12,
                "rank {rank} comp: {} vs {}",
                table.comp_time(),
                counters.comp_time
            );
            assert!((table.idle_time() - counters.idle_time).abs() < 1e-12);
            // phase-level flop attribution adds up to the counter too
            let phase_flops: u64 = table.iter().map(|(_, s)| s.flops).sum();
            assert_eq!(phase_flops, counters.flops);
        }
        assert_eq!(registry.counter("collectives.allreduce"), 1);
        assert_eq!(registry.counter("collectives.barrier"), 1);
        assert_eq!(registry.meta()["engine"], "thread_machine");
    }

    #[test]
    fn telemetry_critical_rank_matches_report() {
        let (_, report, registry) =
            ThreadMachine::run_report_telemetry(4, CostModel::cray_xc30(), |comm| {
                comm.charge_flops(KernelClass::Dot, (comm.rank() as u64 + 1) * 1_000_000, 10);
                let mut b = vec![0.0];
                comm.allreduce_sum(&mut b);
            });
        let critical = registry.critical_rank().expect("nonempty run");
        assert_eq!(critical, 3);
        let table = registry.phases(critical).unwrap();
        assert!((table.comp_time() - report.critical.comp_time).abs() < 1e-12);
        assert!((table.comm_time() - report.critical.comm_time).abs() < 1e-12);
    }

    #[test]
    fn iallreduce_result_is_bitwise_the_blocking_allreduce() {
        // Same binomial tree, same combine order: the fused nonblocking
        // path must produce bit-identical sums on every rank, with any
        // amount of work overlapped in flight.
        for p in [1, 2, 3, 4, 7, 8] {
            let blocking = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                let mut buf = vec![0.1 * (comm.rank() as f64 + 1.0); 5];
                comm.allreduce_sum(&mut buf);
                buf
            });
            let fused = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                let mut buf = vec![0.1 * (comm.rank() as f64 + 1.0); 5];
                let req = comm.iallreduce_sum_start(&mut buf);
                comm.charge_flops(KernelClass::Vector, 10_000, 10); // overlapped work
                comm.iallreduce_wait(req);
                buf
            });
            for ((b, _), (f, _)) in blocking.iter().zip(&fused) {
                assert_eq!(b, f, "p={p}");
            }
        }
    }

    #[test]
    fn iallreduce_overlap_shortens_the_clock() {
        let model = CostModel::cray_xc30();
        let run = |overlap: bool| {
            ThreadMachine::run(4, model, move |comm| {
                let mut buf = vec![1.0; 1000];
                if overlap {
                    let req = comm.iallreduce_sum_start(&mut buf);
                    comm.charge_flops(KernelClass::Dot, 6_000, 10);
                    comm.iallreduce_wait(req);
                } else {
                    comm.iallreduce_sum(&mut buf);
                    comm.charge_flops(KernelClass::Dot, 6_000, 10);
                }
                (comm.clock(), comm.counters())
            })
        };
        let off = run(false);
        let on = run(true);
        for ((co, c_off), (cn, c_on)) in off.iter().zip(&on) {
            assert!(cn.0 < co.0, "overlap must shorten the clock");
            // same wire traffic either way
            assert_eq!(c_off.messages, c_on.messages);
            assert_eq!(c_off.words, c_on.words);
            // the hidden portion came out of visible comm time
            assert!(c_on.comm_time < c_off.comm_time);
        }
    }

    #[test]
    fn telemetry_p2p_attributes_volume_and_time() {
        let (_, registry) = ThreadMachine::run_telemetry(2, CostModel::cray_xc30(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, &[1.0; 32]);
            } else {
                comm.recv(0);
            }
        });
        assert_eq!(registry.counter("collectives.point_to_point"), 1);
        // sender logs the words; receiver logs the transfer time
        assert_eq!(registry.phases(0).unwrap().get(Phase::Comm).words, 32);
        assert!(registry.phases(1).unwrap().comm_time() > 0.0);
    }
}
