//! Deterministic fault and perturbation injection for the virtual cluster.
//!
//! The paper's case for SA methods rests on the latency term dominating at
//! scale and on load imbalance "decreas[ing] the effective flops rate"
//! (§VI) — effects a *clean* simulated machine cannot exhibit. This module
//! injects them on purpose, deterministically: per-rank compute-rate skew,
//! per-collective latency jitter, transient rank stalls (stragglers), and
//! an optional fail-stop rank fault recovered from the last outer-loop
//! checkpoint.
//!
//! Chaos perturbs **time, never values**. Every injected quantity is a
//! pure function of `(seed, stream, rank, index)` — a counter-based
//! [`SplitMix64`] hash with no shared mutable generator — so the schedule
//! is identical across engines, thread counts, and overlap settings, and a
//! chaos run's solution is bitwise identical to the unperturbed run's.

use xrng::SplitMix64;

/// Ceiling on one injected transient stall. Chosen ≫ the Cray XC30 α
/// (8 µs) so a stall is visible against real collective latency but does
/// not dwarf a whole outer block.
pub const MAX_STALL_SECS: f64 = 1e-3;

/// Fixed cost of restarting a failed rank from the last checkpoint, on
/// top of redoing the lost block (process respawn + state reload).
pub const RESTART_OVERHEAD_SECS: f64 = 1e-2;

/// Parsed `--chaos` specification: which perturbations to inject and how
/// hard. All intensities default to zero (a zero spec injects nothing but
/// still exercises the checkpoint path and emits `chaos.*` telemetry).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Master seed for every injected schedule.
    pub seed: u64,
    /// Per-rank compute-rate skew: rank `r` runs `1 + skew·u_r` slower,
    /// `u_r` uniform in `[0, 1)`. `0.1` ⇒ up to 10% slower ranks.
    pub skew: f64,
    /// Per-collective latency jitter in seconds: each collective costs an
    /// extra `jitter·u` (program-order draw, identical on all ranks).
    pub jitter: f64,
    /// Transient-stall probability per `(rank, collective)`: with this
    /// probability the rank stalls up to [`MAX_STALL_SECS`] at entry.
    pub straggle: f64,
    /// Optional fail-stop fault: `(rank, step)` — the rank dies during
    /// outer block `step` and recovers from the previous checkpoint.
    pub fail: Option<(usize, usize)>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            skew: 0.0,
            jitter: 0.0,
            straggle: 0.0,
            fail: None,
        }
    }
}

impl ChaosSpec {
    /// Parse the CLI form
    /// `seed=…,skew=…,jitter=…,straggle=…,fail=rank@step` — every key
    /// optional, any order, comma-separated.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = Self::default();
        for field in s.split(',').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("chaos field `{field}` is not key=value"))?;
            match key.trim() {
                "seed" => {
                    spec.seed = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("chaos seed `{value}`: {e}"))?;
                }
                "skew" => spec.skew = parse_intensity("skew", value)?,
                "jitter" => spec.jitter = parse_intensity("jitter", value)?,
                "straggle" => {
                    let p = parse_intensity("straggle", value)?;
                    if p > 1.0 {
                        return Err(format!("chaos straggle `{value}` must be ≤ 1"));
                    }
                    spec.straggle = p;
                }
                "fail" => {
                    let (rank, step) = value
                        .trim()
                        .split_once('@')
                        .ok_or_else(|| format!("chaos fail `{value}` is not rank@step"))?;
                    let rank = rank
                        .parse()
                        .map_err(|e| format!("chaos fail rank `{rank}`: {e}"))?;
                    let step = step
                        .parse()
                        .map_err(|e| format!("chaos fail step `{step}`: {e}"))?;
                    spec.fail = Some((rank, step));
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(spec)
    }
}

fn parse_intensity(key: &str, value: &str) -> Result<f64, String> {
    let v: f64 = value
        .trim()
        .parse()
        .map_err(|e| format!("chaos {key} `{value}`: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("chaos {key} `{value}` must be finite and ≥ 0"));
    }
    Ok(v)
}

// Stream tags keep the three schedules statistically independent even at
// equal (rank, index).
const STREAM_SKEW: u64 = 1;
const STREAM_JITTER: u64 = 2;
const STREAM_STALL: u64 = 3;

// Large odd multipliers (SplitMix64 / Murmur3 finalizer constants) spread
// the low-entropy (stream, rank, index) triples across the key space.
const K_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;
const K_RANK: u64 = 0xBF58_476D_1CE4_E5B9;
const K_INDEX: u64 = 0x94D0_49BB_1331_11EB;

/// The replayable injection schedule derived from a [`ChaosSpec`].
///
/// Every draw is **counter-based**: a fresh [`SplitMix64`] keyed by
/// `(seed, stream, rank, index)`, so no engine, rank, or thread ever
/// shares generator state and the schedule cannot depend on execution
/// order.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    spec: ChaosSpec,
}

impl ChaosPlan {
    /// Plan for the given spec.
    pub fn new(spec: &ChaosSpec) -> Self {
        Self { spec: *spec }
    }

    /// The spec this plan replays.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    fn draw(&self, stream: u64, rank: u64, index: u64) -> SplitMix64 {
        SplitMix64::new(
            self.spec.seed
                ^ stream.wrapping_mul(K_STREAM)
                ^ rank.wrapping_mul(K_RANK)
                ^ index.wrapping_mul(K_INDEX),
        )
    }

    /// Rank `r`'s compute-time multiplier, fixed for the whole run:
    /// `1 + skew·u_r ∈ [1, 1 + skew)`.
    pub fn skew_mult(&self, rank: usize) -> f64 {
        if self.spec.skew == 0.0 {
            return 1.0;
        }
        1.0 + self.spec.skew * unit(self.draw(STREAM_SKEW, rank as u64, 0).next_u64())
    }

    /// Extra latency (seconds) on the `index`-th collective, identical on
    /// every rank (program-order draw).
    pub fn jitter(&self, index: u64) -> f64 {
        if self.spec.jitter == 0.0 {
            return 0.0;
        }
        self.spec.jitter * unit(self.draw(STREAM_JITTER, 0, index).next_u64())
    }

    /// Transient stall (seconds, possibly zero) injected on rank `rank` at
    /// entry to the `index`-th collective.
    pub fn stall(&self, rank: usize, index: u64) -> f64 {
        if self.spec.straggle == 0.0 {
            return 0.0;
        }
        let mut g = self.draw(STREAM_STALL, rank as u64, index);
        if unit(g.next_u64()) < self.spec.straggle {
            unit(g.next_u64()) * MAX_STALL_SECS
        } else {
            0.0
        }
    }

    /// Whether rank `rank` fail-stops during outer block `step`.
    pub fn fails_at(&self, rank: usize, step: usize) -> bool {
        self.spec.fail == Some((rank, step))
    }
}

/// Map a raw 64-bit draw to uniform `[0, 1)` (53 mantissa bits).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let spec = ChaosSpec::parse("seed=7,skew=0.1,jitter=2e-5,straggle=0.01,fail=3@5")
            .expect("valid spec");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.skew, 0.1);
        assert_eq!(spec.jitter, 2e-5);
        assert_eq!(spec.straggle, 0.01);
        assert_eq!(spec.fail, Some((3, 5)));
    }

    #[test]
    fn parse_partial_and_empty_specs() {
        assert_eq!(
            ChaosSpec::parse("").expect("empty ok"),
            ChaosSpec::default()
        );
        let spec = ChaosSpec::parse("jitter=1e-4").expect("partial ok");
        assert_eq!(spec.jitter, 1e-4);
        assert_eq!(spec.skew, 0.0);
        assert_eq!(spec.fail, None);
    }

    #[test]
    fn parse_rejects_malformed_fields() {
        assert!(ChaosSpec::parse("skew").is_err());
        assert!(ChaosSpec::parse("warp=9").is_err());
        assert!(ChaosSpec::parse("skew=-0.1").is_err());
        assert!(ChaosSpec::parse("straggle=1.5").is_err());
        assert!(ChaosSpec::parse("fail=3").is_err());
        assert!(ChaosSpec::parse("fail=x@2").is_err());
        assert!(ChaosSpec::parse("jitter=nope").is_err());
    }

    #[test]
    fn draws_are_pure_functions_of_their_keys() {
        let plan = ChaosPlan::new(&ChaosSpec {
            seed: 42,
            skew: 0.2,
            jitter: 1e-4,
            straggle: 0.5,
            fail: None,
        });
        // Repeated evaluation returns the identical value: no hidden state.
        for rank in 0..8 {
            assert_eq!(
                plan.skew_mult(rank).to_bits(),
                plan.skew_mult(rank).to_bits()
            );
            for idx in 0..32 {
                assert_eq!(
                    plan.stall(rank, idx).to_bits(),
                    plan.stall(rank, idx).to_bits()
                );
            }
        }
        for idx in 0..32 {
            assert_eq!(plan.jitter(idx).to_bits(), plan.jitter(idx).to_bits());
        }
    }

    #[test]
    fn draws_land_in_their_documented_ranges() {
        let plan = ChaosPlan::new(&ChaosSpec {
            seed: 9,
            skew: 0.3,
            jitter: 5e-5,
            straggle: 0.4,
            fail: None,
        });
        let mut stalls = 0usize;
        for rank in 0..64 {
            let m = plan.skew_mult(rank);
            assert!((1.0..1.3).contains(&m), "skew_mult {m}");
            for idx in 0..64 {
                let s = plan.stall(rank, idx);
                assert!((0.0..=MAX_STALL_SECS).contains(&s), "stall {s}");
                stalls += usize::from(s > 0.0);
            }
        }
        for idx in 0..256 {
            let j = plan.jitter(idx);
            assert!((0.0..5e-5).contains(&j), "jitter {j}");
        }
        // straggle=0.4 over 4096 (rank, idx) pairs: stall count is near
        // the expectation; a degenerate hash would send this to 0 or 4096.
        assert!((1200..2100).contains(&stalls), "stall count {stalls}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChaosPlan::new(&ChaosSpec {
            seed: 1,
            jitter: 1e-4,
            ..ChaosSpec::default()
        });
        let b = ChaosPlan::new(&ChaosSpec {
            seed: 2,
            jitter: 1e-4,
            ..ChaosSpec::default()
        });
        assert!((0..16).any(|i| a.jitter(i) != b.jitter(i)));
    }

    #[test]
    fn zero_intensities_inject_nothing() {
        let plan = ChaosPlan::new(&ChaosSpec::default());
        assert_eq!(plan.skew_mult(3), 1.0);
        assert_eq!(plan.jitter(7), 0.0);
        assert_eq!(plan.stall(2, 9), 0.0);
        assert!(!plan.fails_at(0, 0));
    }
}
