//! Glue between the engines' cost accounting and `saco-telemetry`.
//!
//! Both engines charge time through the same [`CostModel`] formulas; this
//! module gives them one shared way to mirror those charges into phase
//! tables and to assemble a run-level [`Registry`] afterwards, so the
//! thread machine and the virtual cluster feed the same sink and their
//! reports are directly comparable.
//!
//! [`CostModel`]: crate::CostModel

use crate::cost::CollectiveKind;
use saco_telemetry::{PhaseTable, Registry};

/// Stable names for [`CollectiveKind`] counters, indexed by [`kind_slot`].
pub(crate) const KIND_NAMES: [&str; 7] = [
    "allreduce",
    "reduce",
    "bcast",
    "allgather",
    "gather",
    "barrier",
    "point_to_point",
];

/// Dense index for per-kind collective counters.
pub(crate) fn kind_slot(kind: CollectiveKind) -> usize {
    match kind {
        CollectiveKind::Allreduce => 0,
        CollectiveKind::Reduce => 1,
        CollectiveKind::Bcast => 2,
        CollectiveKind::Allgather => 3,
        CollectiveKind::Gather => 4,
        CollectiveKind::Barrier => 5,
        CollectiveKind::PointToPoint => 6,
    }
}

/// Per-rank accounting of injected chaos (see [`crate::chaos`]): how much
/// time each perturbation class added, plus checkpoint/failure counts.
/// All zeros (and `enabled = false`) on a clean run, so the `chaos.*`
/// registry entries appear only when chaos was actually switched on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct ChaosStats {
    /// Chaos was enabled on this rank (even if all intensities were zero).
    pub enabled: bool,
    /// Transient stalls injected at collective entries.
    pub stalls: u64,
    /// Seconds lost to injected stalls.
    pub stall_time: f64,
    /// Seconds of injected collective latency jitter (program-order:
    /// identical on every rank).
    pub jitter_time: f64,
    /// Extra compute seconds from this rank's rate skew.
    pub skew_time: f64,
    /// Fail-stop faults injected on this rank.
    pub failures: u64,
    /// Seconds spent redoing the lost block plus restart overhead.
    pub recovery_time: f64,
    /// Block-boundary checkpoints taken (program-order).
    pub checkpoints: u64,
    /// Idle seconds attributable to chaos: this rank's idle under chaos
    /// minus its idle on the clean counterfactual timeline (virtual
    /// cluster only; the thread engine reports 0).
    pub induced_idle_time: f64,
}

/// What one rank accumulates for telemetry while it runs: a phase table
/// plus per-kind collective entry counts. Plain arrays, so recording adds
/// no allocation to the engines' hot charge paths.
#[derive(Clone, Debug, Default)]
pub(crate) struct RankTelemetry {
    pub phases: PhaseTable,
    pub collectives: [u64; 7],
    /// Payload words this rank handed to fused (`iallreduce`) collectives
    /// — the packed on-the-wire size, before the `words_moved` charge.
    pub words_packed: u64,
    /// Seconds of in-flight `iallreduce` time this rank hid behind local
    /// computation between `start` and `wait`.
    pub hidden_time: f64,
    /// Injected-chaos accounting (all zeros on a clean run).
    pub chaos: ChaosStats,
}

/// Assemble the run-level registry from per-rank telemetry.
///
/// Phase tables stay per-rank (keyed by rank index, merging into the sink
/// associatively). Collective counters are program-order counts: in an
/// SPMD run every rank enters each collective, so rank 0's counts stand
/// for the program — except point-to-point messages, which differ per
/// rank and are summed.
pub(crate) fn registry_from_ranks(engine: &str, ranks: &[RankTelemetry]) -> Registry {
    let mut reg = Registry::new();
    reg.set_meta("engine", engine);
    reg.set_meta("ranks", ranks.len());
    for (rank, rt) in ranks.iter().enumerate() {
        if !rt.phases.is_empty() {
            reg.phases_mut(rank).merge(&rt.phases);
        }
    }
    if let Some(first) = ranks.first() {
        for (slot, &name) in KIND_NAMES.iter().enumerate() {
            let count = if slot == kind_slot(CollectiveKind::PointToPoint) {
                ranks.iter().map(|rt| rt.collectives[slot]).sum()
            } else {
                first.collectives[slot]
            };
            if count > 0 {
                reg.counter_add(&format!("collectives.{name}"), count);
            }
        }
        // Fused-collective extras: the packed payload volume is
        // program-order (identical on every rank), the hidden time is the
        // critical rank's — the overlap that actually shortened the
        // reported timeline. Only emitted once a fused collective ran, so
        // runs on the blocking path keep their exact report shape.
        if first.words_packed > 0 {
            reg.counter_add("comm.words_packed", first.words_packed);
            let critical = reg.critical_rank().unwrap_or(0);
            let hidden = ranks.get(critical).map_or(0.0, |rt| rt.hidden_time);
            reg.gauge_set("comm.overlap_hidden_time", hidden);
        }
        // Chaos accounting (see `crate::chaos`): emitted only when chaos
        // was enabled, so clean runs keep their exact report shape. The
        // full set is emitted even at zero values so a chaos report's key
        // set is independent of which perturbations happened to fire.
        if ranks.iter().any(|rt| rt.chaos.enabled) {
            reg.counter_add("chaos.stalls", ranks.iter().map(|rt| rt.chaos.stalls).sum());
            reg.counter_add(
                "chaos.failures",
                ranks.iter().map(|rt| rt.chaos.failures).sum(),
            );
            // Checkpoints are program-order: every rank takes the same ones.
            reg.counter_add("chaos.checkpoints", first.chaos.checkpoints);
            reg.gauge_set(
                "chaos.stall_time",
                ranks.iter().map(|rt| rt.chaos.stall_time).sum(),
            );
            reg.gauge_set(
                "chaos.skew_time",
                ranks.iter().map(|rt| rt.chaos.skew_time).sum(),
            );
            // Jitter is identical on every rank (program-order draws).
            reg.gauge_set("chaos.jitter_time", first.chaos.jitter_time);
            reg.gauge_set(
                "chaos.recovery_time",
                ranks.iter().map(|rt| rt.chaos.recovery_time).sum(),
            );
            reg.gauge_set(
                "chaos.induced_idle_time",
                ranks.iter().map(|rt| rt.chaos.induced_idle_time).sum(),
            );
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use saco_telemetry::Phase;

    #[test]
    fn kind_slots_are_distinct_and_named() {
        use CollectiveKind::*;
        let kinds = [
            Allreduce,
            Reduce,
            Bcast,
            Allgather,
            Gather,
            Barrier,
            PointToPoint,
        ];
        let mut seen = [false; 7];
        for k in kinds {
            let s = kind_slot(k);
            assert!(!seen[s], "duplicate slot {s}");
            seen[s] = true;
            assert!(!KIND_NAMES[s].is_empty());
        }
    }

    #[test]
    fn registry_sums_p2p_but_not_collectives() {
        let mut a = RankTelemetry::default();
        a.phases.record(Phase::Comm, 1.0);
        a.collectives[kind_slot(CollectiveKind::Allreduce)] = 3;
        a.collectives[kind_slot(CollectiveKind::PointToPoint)] = 2;
        let mut b = RankTelemetry::default();
        b.phases.record(Phase::Comm, 2.0);
        b.collectives[kind_slot(CollectiveKind::Allreduce)] = 3;
        b.collectives[kind_slot(CollectiveKind::PointToPoint)] = 5;

        let reg = registry_from_ranks("thread_machine", &[a, b]);
        assert_eq!(reg.counter("collectives.allreduce"), 3);
        assert_eq!(reg.counter("collectives.point_to_point"), 7);
        assert_eq!(reg.phases(0).unwrap().comm_time(), 1.0);
        assert_eq!(reg.phases(1).unwrap().comm_time(), 2.0);
        assert_eq!(reg.meta()["engine"], "thread_machine");
        assert_eq!(reg.meta()["ranks"], "2");
    }
}
