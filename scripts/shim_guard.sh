#!/usr/bin/env bash
# Guard the execution-backend refactor: the solver recurrences live ONLY in
# crates/core/src/exec/. The seq/sim/dist/net modules are thin shims that
# bind data to an engine — if an iteration loop or a sampled-kernel call
# creeps back into one of them, the one-recurrence-four-engines invariant
# (and with it the cross-engine equivalence the engine matrix asserts) is
# gone. The same split holds one layer down: crates/netcomm is a pure
# message/collective layer and must never learn about the solvers it
# carries, and the CLI launch path must stay a spawner, not a solver.
set -euo pipefail
cd "$(dirname "$0")/.."

# Patterns that only a solver main loop contains. The kernel-family
# entries (begin_epoch / fill / eval) are the K-DCD tile: building or
# transforming kernel rows anywhere but exec/kdcd.rs would fork the
# replicated miss set the collective-skip optimization depends on.
patterns=(
    'while h < cfg\.max_iters'
    'for h in 1\.\.=cfg\.max_iters'
    'sampled_gram'
    'sampled_cross'
    'iallreduce'
    'KernelCache::new'
    'begin_epoch'
    '\.eval\('
)

status=0
for pat in "${patterns[@]}"; do
    if hits=$(grep -rnE "$pat" crates/core/src/seq crates/core/src/sim crates/core/src/dist crates/core/src/net); then
        echo "shim_guard: solver-loop pattern '$pat' found outside crates/core/src/exec/:" >&2
        echo "$hits" >&2
        status=1
    fi
done

# The path/CV/serve layers ride the driver through lasso_family_warm —
# they may sweep λ and carry warm state, but the solver recurrence itself
# (sampling, Gram tiles, Lipschitz steps, prox blocks) must never reappear
# there. PR 10 fixed exactly this: path.rs hid a full hand-rolled SA-BCD
# loop that silently escaped this guard because only seq/sim/dist/net were
# scanned.
warm_patterns=(
    'while h < cfg\.max_iters'
    'for h in 1\.\.=cfg\.max_iters'
    'sampled_gram'
    'sampled_cross'
    'sample_block'
    'block_lipschitz'
    'prox_block'
    'iallreduce'
)
for pat in "${warm_patterns[@]}"; do
    if hits=$(grep -rnE "$pat" crates/core/src/path.rs crates/core/src/crossval.rs crates/core/src/serve); then
        echo "shim_guard: solver-loop pattern '$pat' found in the path/CV/serve layer:" >&2
        echo "$hits" >&2
        status=1
    fi
done

# netcomm is solver-free: frames, ordering, mesh, collectives — nothing
# about Lasso/SVM recurrences, kernels, or the workspace they act on.
solver_patterns=(
    'lasso_family'
    'svm_family'
    'kdcd_family'
    'sampled_gram'
    'sampled_cross'
    'KernelWorkspace'
    'KernelCache'
    'KernelFn'
    'Regularizer'
)
for pat in "${solver_patterns[@]}"; do
    if hits=$(grep -rnE "$pat" crates/netcomm/src crates/netcomm/tests); then
        echo "shim_guard: solver symbol '$pat' leaked into the netcomm message layer:" >&2
        echo "$hits" >&2
        status=1
    fi
done

# The SIMD contract: every multiply-accumulate inner loop lives in
# sparsela::simd, where the lane schedule is pinned. `mul_add` is banned
# everywhere numeric code runs — a hardware FMA rounds once where the
# contract's plain mul-then-add rounds twice, so one fused call silently
# forks the bitstream between ISAs.
if hits=$(grep -rnE '\bmul_add\b' crates/sparsela/src crates/par/src crates/core/src crates/mpisim/src); then
    echo "shim_guard: mul_add found (FMA rounds once, the lane contract rounds twice):" >&2
    echo "$hits" >&2
    status=1
fi

# The flat-slice kernel front-ends must stay dispatch shims: a raw
# multiply-accumulate loop creeping back into vecops.rs or gram.rs would
# bypass sparsela::simd's lane-reduction contract. One documented
# exception: the nrm2 extreme-scale fallback (`acc += t * t`), a plain
# serial chain that is mode-independent by construction.
if hits=$(grep -nE '(acc|sum)[a-z0-9_]* *\+= *[^;]*\*' \
        crates/sparsela/src/vecops.rs crates/sparsela/src/gram.rs \
        | grep -v 'acc += t \* t'); then
    echo "shim_guard: raw multiply-accumulate loop outside sparsela::simd:" >&2
    echo "$hits" >&2
    status=1
fi

# Dataset file I/O is confined to sparsela::{io,shard}: the solvers, the
# exec recurrences, and datagen see matrices only through MajorSlices /
# SliceSource. A stray File::open in core or datagen means some code path
# reads data behind the shard cache's back — unbudgeted, uncounted by the
# io.* gauges, and invisible to the bitwise streamed≡in-memory proof.
io_patterns=(
    'File::open'
    'File::create'
    'OpenOptions'
    'fs::read'
    'read_to_string'
    'BufReader'
)
# One documented exception: serve/artifact.rs reads and writes *model*
# artifacts (saco-model/v1) — trained solutions, not datasets. They are
# never behind the shard cache, so the budget/io.* accounting the ban
# protects does not apply; every dataset byte the serve layer touches
# still comes through sparsela::io.
for pat in "${io_patterns[@]}"; do
    if hits=$(grep -rnE "$pat" crates/core/src crates/datagen/src \
            | grep -v '^crates/core/src/serve/artifact\.rs:'); then
        echo "shim_guard: dataset file I/O '$pat' outside sparsela::{io,shard}:" >&2
        echo "$hits" >&2
        status=1
    fi
done

# The launch path spawns ranks and merges reports; the solve itself must
# route through the saco::net entry points, never the recurrence kernels.
# (`KernelFn::parse` for --kernel is fine — building or transforming
# kernel rows is not.)
for pat in 'lasso_family' 'svm_family' 'kdcd_family' 'sampled_gram' 'sampled_cross' \
        'KernelCache' 'begin_epoch' '\.eval\('; do
    if hits=$(grep -rnE "$pat" crates/cli/src); then
        echo "shim_guard: solver-loop pattern '$pat' found in the CLI launch path:" >&2
        echo "$hits" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "shim_guard: FAILED — move recurrence logic into crates/core/src/exec/" >&2
else
    echo "shim_guard: OK — shims are shims, netcomm/CLI are solver-free, inner loops live in sparsela::simd"
fi
exit "$status"
