#!/usr/bin/env bash
# Guard the execution-backend refactor: the solver recurrences live ONLY in
# crates/core/src/exec/. The seq/sim/dist modules are thin shims that bind
# data to an engine — if an iteration loop or a sampled-kernel call creeps
# back into one of them, the one-recurrence-three-engines invariant (and
# with it the cross-engine equivalence the engine matrix asserts) is gone.
set -euo pipefail
cd "$(dirname "$0")/.."

# Patterns that only a solver main loop contains.
patterns=(
    'while h < cfg\.max_iters'
    'for h in 1\.\.=cfg\.max_iters'
    'sampled_gram'
    'sampled_cross'
    'iallreduce'
)

status=0
for pat in "${patterns[@]}"; do
    if hits=$(grep -rnE "$pat" crates/core/src/seq crates/core/src/sim crates/core/src/dist); then
        echo "shim_guard: solver-loop pattern '$pat' found outside crates/core/src/exec/:" >&2
        echo "$hits" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "shim_guard: FAILED — move recurrence logic into crates/core/src/exec/" >&2
else
    echo "shim_guard: OK — seq/sim/dist contain no solver-loop logic"
fi
exit "$status"
