//! Integration tests of the paper's central claim: each SA method produces
//! the same iterate sequence as its classical counterpart (in exact
//! arithmetic), so the observed differences must sit at round-off level —
//! the Table III result — across regularizers, block sizes, losses, and
//! the registry's dataset structures.

use datagen::{PaperDataset, Task};
use saco::prox::{ElasticNet, GroupLasso, Lasso, Regularizer};
use saco::seq::{acc_bcd, bcd, sa_accbcd, sa_bcd, sa_svm, svm};
use saco::{LassoConfig, SvmConfig, SvmLoss};

fn lasso_cfg(mu: usize, s: usize, iters: usize) -> LassoConfig {
    LassoConfig {
        mu,
        s,
        lambda: 0.5,
        seed: 2024,
        max_iters: iters,
        trace_every: iters / 8,
        rel_tol: None,
        ..Default::default()
    }
}

fn assert_traces_match(a: &saco::SolveResult, b: &saco::SolveResult, tol: f64, what: &str) {
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace lengths differ");
    let scale = a.trace.initial_value().abs();
    for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
        let denom = p.value.abs().max(1e-9 * scale);
        let rel = (p.value - q.value).abs() / denom;
        assert!(rel < tol, "{what} iter {}: rel err {rel}", p.iter);
    }
}

#[test]
fn lasso_sa_equivalence_on_registry_structures() {
    // one dense, one uniform-sparse, one power-law dataset
    for ds in [
        PaperDataset::Leu,
        PaperDataset::Covtype,
        PaperDataset::News20,
    ] {
        let g = ds.generate(0.05, 7);
        let lambda = 0.1;
        let reg = Lasso::new(lambda);
        for (mu, s) in [(1usize, 64usize), (4, 16)] {
            let mut c = lasso_cfg(mu, s, 320);
            c.lambda = lambda;
            let classic = acc_bcd(&g.dataset, &reg, &c);
            let sa = sa_accbcd(&g.dataset, &reg, &c);
            assert_traces_match(&classic, &sa, 1e-9, g.info.name);
            let classic = bcd(&g.dataset, &reg, &c);
            let sa = sa_bcd(&g.dataset, &reg, &c);
            assert_traces_match(&classic, &sa, 1e-9, g.info.name);
        }
    }
}

#[test]
fn sa_equivalence_holds_for_elastic_net_and_group_lasso() {
    let g = PaperDataset::Epsilon.generate(0.05, 9);
    fn check<R: Regularizer>(ds: &sparsela::io::Dataset, reg: &R, mu: usize) {
        let c = LassoConfig {
            mu,
            s: 24,
            lambda: 0.3,
            seed: 31,
            max_iters: 240,
            trace_every: 40,
            rel_tol: None,
            ..Default::default()
        };
        let classic = acc_bcd(ds, reg, &c);
        let sa = sa_accbcd(ds, reg, &c);
        assert_eq!(classic.trace.len(), sa.trace.len());
        for (p, q) in classic.trace.points().iter().zip(sa.trace.points()) {
            let rel = (p.value - q.value).abs() / p.value.abs().max(1e-300);
            assert!(rel < 1e-9, "iter {}: rel err {rel}", p.iter);
        }
    }
    check(&g.dataset, &ElasticNet::new(0.4), 4);
    let n = g.dataset.num_features();
    check(&g.dataset, &GroupLasso::uniform(0.3, n, 4), 4);
}

#[test]
fn svm_sa_equivalence_on_registry_structures() {
    for ds in [
        PaperDataset::W1a,
        PaperDataset::Duke,
        PaperDataset::Rcv1Binary,
    ] {
        let g = ds.generate_for_task(Task::Classification, 0.1, 11);
        for loss in [SvmLoss::L1, SvmLoss::L2] {
            let c = SvmConfig {
                loss,
                lambda: 1.0,
                s: 48,
                seed: 77,
                max_iters: 960,
                trace_every: 120,
                gap_tol: None,
                overlap: true,
            };
            let classic = svm(&g.dataset, &c);
            let sa = sa_svm(&g.dataset, &c);
            assert_eq!(classic.trace.len(), sa.trace.len());
            let init = classic.trace.initial_value();
            for (p, q) in classic.trace.points().iter().zip(sa.trace.points()) {
                // Floor the denominator: once the gap has decayed to
                // ~machine-ε of the problem scale, agreement in absolute
                // terms (relative to the initial gap) is what stability
                // means.
                let denom = p.value.abs().max(1e-6 * init);
                let rel = (p.value - q.value).abs() / denom;
                assert!(
                    rel < 1e-8,
                    "{} {loss:?} iter {}: rel {rel}",
                    g.info.name,
                    p.iter
                );
            }
        }
    }
}

#[test]
fn table_iii_machine_precision_at_s_1000() {
    // The headline Table III numbers: final relative objective error at
    // s = 1000 sits at machine precision.
    let g = PaperDataset::Leu.generate(1.0, 13);
    let lambda = saco_lambda(&g.dataset);
    let c = LassoConfig {
        mu: 1,
        s: 1000,
        lambda,
        seed: 1000,
        max_iters: 2000,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let reg = Lasso::new(lambda);
    let classic = acc_bcd(&g.dataset, &reg, &c);
    let sa = sa_accbcd(&g.dataset, &reg, &c);
    let rel = sa.relative_error_vs(&classic);
    assert!(rel < 5e-13, "relative objective error {rel} at s=1000");
}

/// λ at 10% of ‖Aᵀb‖∞ (enough to matter, not enough to zero everything).
fn saco_lambda(ds: &sparsela::io::Dataset) -> f64 {
    let atb = ds.a.spmv_t(&ds.b);
    0.1 * sparsela::vecops::inf_norm(&atb)
}

#[test]
fn sa_solvers_with_s_1_are_bitwise_classical_shapes() {
    // s = 1 must agree with the classical solver at every traced point to
    // extremely tight tolerance (identical computation graph modulo benign
    // reassociation in the Gram kernel).
    let g = PaperDataset::Rcv1Binary.generate(0.05, 17);
    let c = SvmConfig {
        loss: SvmLoss::L1,
        lambda: 1.0,
        s: 1,
        seed: 5,
        max_iters: 400,
        trace_every: 50,
        gap_tol: None,
        overlap: true,
    };
    let a = svm(&g.dataset, &c);
    let b = sa_svm(&g.dataset, &c);
    for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
        assert!((p.value - q.value).abs() <= 1e-12 * p.value.abs().max(1.0));
    }
}
