//! Determinism and numerics-preservation contract of the chaos layer.
//!
//! Chaos perturbs *time*, never *values*, and its schedule is a pure
//! function of `(seed, stream, rank, index)` — so the contract is:
//!
//! * chaos-on solutions are **bitwise identical** to chaos-off solutions,
//!   including through an injected fail-stop fault and its checkpoint
//!   recovery;
//! * the injected schedule and every `chaos.*` counter/gauge are
//!   **identical across `SACO_THREADS` ∈ {1, 4}** (threads are a pure
//!   throughput knob) and across overlap on/off (the draws are indexed by
//!   collective program order, which both schedules share);
//! * the **thread engine agrees with the virtual cluster**: same chaos
//!   counters exactly, same injected times to round-off — the engine-
//!   matrix guarantee extended to the perturbed timeline.

use datagen::{planted_regression, uniform_sparse};
use mpisim::telemetry::Registry;
use mpisim::{ChaosSpec, CostModel, ThreadMachine};
use proptest::prelude::*;
use saco::dist::{dist_sa_accbcd, LassoRankData};
use saco::prox::Lasso;
use saco::seq::sa_accbcd;
use saco::sim::{sim_sa_accbcd, sim_sa_accbcd_chaos, sim_sa_bcd_chaos};
use saco::{LassoConfig, SolveResult};
use sparsela::io::Dataset;

fn problem(seed: u64) -> Dataset {
    let a = uniform_sparse(120, 60, 0.15, seed);
    planted_regression(a, 5, 0.05, seed).dataset
}

fn cfg(s: usize, iters: usize, overlap: bool) -> LassoConfig {
    LassoConfig {
        mu: 2,
        s,
        lambda: 0.05,
        seed: 77,
        max_iters: iters,
        trace_every: 0,
        rel_tol: None,
        overlap,
        ..Default::default()
    }
}

fn full_spec() -> ChaosSpec {
    ChaosSpec {
        seed: 2024,
        skew: 0.3,
        jitter: 1e-4,
        straggle: 0.1,
        fail: Some((2, 1)),
    }
}

/// The schedule-defining chaos telemetry: injection counts plus stall and
/// jitter totals, all bitwise-comparable whenever the same plan replays.
/// Excluded on purpose: `chaos.skew_time` (the same per-charge terms sum
/// in a different order when overlap reorders compute charges — compare
/// it with [`assert_close`]) and `chaos.recovery_time` (the *redo* charge
/// depends on the engine timeline, which overlap legitimately changes).
fn schedule_fingerprint(reg: &Registry) -> (u64, u64, u64, [u64; 2]) {
    (
        reg.counter("chaos.stalls"),
        reg.counter("chaos.failures"),
        reg.counter("chaos.checkpoints"),
        [
            reg.gauge("chaos.stall_time")
                .expect("stall gauge")
                .to_bits(),
            reg.gauge("chaos.jitter_time")
                .expect("jitter gauge")
                .to_bits(),
        ],
    )
}

fn skew_time(reg: &Registry) -> f64 {
    reg.gauge("chaos.skew_time").expect("skew gauge")
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0),
        "{what}: {a} vs {b}"
    );
}

fn assert_bitwise(a: &SolveResult, b: &SolveResult, what: &str) {
    assert_eq!(a.x.len(), b.x.len(), "{what}: length mismatch");
    for (i, (va, vb)) in a.x.iter().zip(&b.x).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: x[{i}] differs");
    }
}

/// Chaos-on ≡ chaos-off bitwise — through skew, jitter, stalls, AND a
/// fail-stop fault with checkpoint recovery — at every thread count and
/// overlap mode; and the chaos schedule itself is invariant across all
/// four combinations.
#[test]
fn chaos_preserves_numerics_across_threads_and_overlap() {
    let ds = problem(5);
    let lasso = Lasso::new(0.05);
    let spec = full_spec();
    let clean = sa_accbcd(&ds, &lasso, &cfg(8, 96, true));

    let mut fingerprints = Vec::new();
    for threads in [1usize, 4] {
        saco_par::set_threads(threads);
        for overlap in [true, false] {
            let c = cfg(8, 96, overlap);
            let (off, _) = sim_sa_accbcd(&ds, &lasso, &c, 8, CostModel::cray_xc30(), false);
            let (on, rep, reg) =
                sim_sa_accbcd_chaos(&ds, &lasso, &c, 8, CostModel::cray_xc30(), false, &spec);
            let what = format!("threads={threads} overlap={overlap}");
            assert_bitwise(&on, &off, &format!("chaos-on vs chaos-off ({what})"));
            assert_bitwise(&on, &clean, &format!("chaos-on vs sequential ({what})"));
            assert_eq!(reg.counter("chaos.failures"), 1, "fault fired ({what})");
            assert!(
                reg.gauge("chaos.recovery_time").expect("recovery gauge") > 0.0,
                "recovery charged ({what})"
            );
            assert!(rep.running_time() > 0.0);
            fingerprints.push((what, schedule_fingerprint(&reg), skew_time(&reg)));
        }
    }
    saco_par::set_threads(1);
    let (_, first, first_skew) = &fingerprints[0];
    for (what, fp, skew) in &fingerprints[1..] {
        assert_eq!(fp, first, "chaos schedule drifted at {what}");
        assert_close(*skew, *first_skew, &format!("skew time at {what}"));
    }
}

/// The thread engine under chaos: bitwise numerics on every rank, and the
/// same injected schedule as the virtual cluster — counters exactly,
/// injected times to round-off.
#[test]
fn thread_engine_chaos_matches_virtual_cluster() {
    let ds = problem(6);
    let lasso = Lasso::new(0.05);
    let spec = full_spec();
    let c = cfg(8, 96, true);
    let p = 4;
    let fixed = ChaosSpec {
        fail: Some((2, 1)),
        ..spec
    };

    let (_, _, sim_reg) =
        sim_sa_accbcd_chaos(&ds, &lasso, &c, p, CostModel::cray_xc30(), false, &fixed);

    let (_, blocks) = LassoRankData::split(&ds, p, false);
    let run_dist = |spec: Option<&ChaosSpec>| {
        ThreadMachine::run_report_telemetry(p, CostModel::cray_xc30(), |comm| {
            if let Some(spec) = spec {
                comm.enable_chaos(spec);
            }
            let data = &blocks[comm.rank()];
            dist_sa_accbcd(comm, data, &lasso, &c)
        })
    };
    // At p > 1 the reduction tree re-associates sums, so dist matches seq
    // only to round-off — the bitwise contract is chaos-on ≡ chaos-off
    // *within* the engine, on every rank.
    let (clean_results, _, _) = run_dist(None);
    let (results, _, dist_reg) = run_dist(Some(&fixed));
    for (r, (on, off)) in results.iter().zip(&clean_results).enumerate() {
        assert_bitwise(on, off, &format!("dist rank {r}: chaos-on vs chaos-off"));
    }
    for (r, res) in results.iter().enumerate().skip(1) {
        assert_bitwise(res, &results[0], &format!("dist rank {r} vs rank 0"));
    }

    assert_eq!(
        schedule_fingerprint(&dist_reg),
        schedule_fingerprint(&sim_reg),
        "thread engine injected a different schedule than the virtual cluster"
    );
    assert_close(
        skew_time(&dist_reg),
        skew_time(&sim_reg),
        "sim vs dist skew time",
    );
    let sim_rec = sim_reg.gauge("chaos.recovery_time").expect("sim recovery");
    let dist_rec = dist_reg
        .gauge("chaos.recovery_time")
        .expect("dist recovery");
    assert!(
        (sim_rec - dist_rec).abs() < 1e-9,
        "recovery time diverged: sim {sim_rec} vs dist {dist_rec}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any spec in the supported intensity ranges: replaying the same
    /// seed reproduces the schedule exactly, flipping overlap keeps it,
    /// and the numerics never move.
    #[test]
    fn any_spec_is_replayable_and_numerics_preserving(
        seed in 0u64..1_000_000,
        skew in 0.0f64..0.5,
        jitter in 0.0f64..2e-4,
        straggle in 0.0f64..0.2,
        fail_rank in 0usize..6,
        fail_step in 0usize..3,
        inject_fail in any::<bool>(),
    ) {
        let spec = ChaosSpec {
            seed,
            skew,
            jitter,
            straggle,
            fail: inject_fail.then_some((fail_rank, fail_step)),
        };
        let ds = problem(9);
        let lasso = Lasso::new(0.05);
        let p = 6;
        let c_on = cfg(8, 48, true);
        let c_off = cfg(8, 48, false);

        let (base, _) = sim_sa_accbcd(&ds, &lasso, &c_on, p, CostModel::cray_xc30(), false);
        let (r1, _, g1) =
            sim_sa_accbcd_chaos(&ds, &lasso, &c_on, p, CostModel::cray_xc30(), false, &spec);
        let (r2, _, g2) =
            sim_sa_accbcd_chaos(&ds, &lasso, &c_on, p, CostModel::cray_xc30(), false, &spec);
        let (r3, _, g3) =
            sim_sa_accbcd_chaos(&ds, &lasso, &c_off, p, CostModel::cray_xc30(), false, &spec);
        // The non-accelerated family shares the plan machinery; spot-check
        // it stays numerics-preserving too.
        let (b1, _, _) =
            sim_sa_bcd_chaos(&ds, &lasso, &c_on, p, CostModel::cray_xc30(), false, &spec);
        let (b0, _) =
            saco::sim::sim_sa_bcd(&ds, &lasso, &c_on, p, CostModel::cray_xc30(), false);

        for (i, (va, vb)) in r1.x.iter().zip(&base.x).enumerate() {
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "chaos moved x[{}]", i);
        }
        for (i, (va, vb)) in b1.x.iter().zip(&b0.x).enumerate() {
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "chaos moved bcd x[{}]", i);
        }
        for (i, (va, vb)) in r1.x.iter().zip(&r2.x).enumerate() {
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "replay moved x[{}]", i);
        }
        for (i, (va, vb)) in r1.x.iter().zip(&r3.x).enumerate() {
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "overlap moved x[{}]", i);
        }
        prop_assert_eq!(
            schedule_fingerprint(&g1),
            schedule_fingerprint(&g2),
            "replay drifted"
        );
        prop_assert_eq!(
            schedule_fingerprint(&g1),
            schedule_fingerprint(&g3),
            "overlap changed the schedule"
        );
        prop_assert_eq!(
            skew_time(&g1).to_bits(),
            skew_time(&g2).to_bits(),
            "replay drifted in skew time"
        );
        // Overlap reorders compute charges: same skew terms, different
        // summation order — equal to round-off, not bitwise.
        prop_assert!(
            (skew_time(&g1) - skew_time(&g3)).abs() <= 1e-12 * skew_time(&g1).max(1.0),
            "overlap changed the skew schedule"
        );
        prop_assert_eq!(
            g1.counter("chaos.failures"),
            u64::from(inject_fail),
            "failure injection count"
        );
    }
}
