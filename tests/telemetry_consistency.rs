//! Telemetry ↔ cost-model consistency: the phase tables the telemetry
//! subsystem accumulates must reconcile, rank by rank and on the critical
//! path, with the `mpisim` cost counters the paper's tables are built
//! from — and the emitted run report must be byte-stable across repeated
//! same-seed runs.

use datagen::PaperDataset;
use mpisim::telemetry::{run_report_json, Registry};
use mpisim::{CostModel, CostReport, ThreadMachine};
use saco::dist::{dist_sa_accbcd, LassoRankData};
use saco::prox::Lasso;
use saco::LassoConfig;
use sparsela::io::Dataset;

const P: usize = 6;

fn dataset() -> Dataset {
    PaperDataset::News20.generate(0.04, 3).dataset
}

fn config() -> LassoConfig {
    LassoConfig {
        mu: 4,
        s: 8,
        lambda: 0.2,
        seed: 44,
        max_iters: 160,
        trace_every: 40,
        rel_tol: None,
        ..Default::default()
    }
}

fn run_instrumented(ds: &Dataset) -> (CostReport, Registry) {
    let cfg = config();
    let reg = Lasso::new(cfg.lambda);
    let (_, blocks) = LassoRankData::split(ds, P, false);
    let (_, rep, registry) =
        ThreadMachine::run_report_telemetry(P, CostModel::cray_xc30(), |comm| {
            dist_sa_accbcd(comm, &blocks[comm.rank()], &reg, &cfg)
        });
    (rep, registry)
}

#[test]
fn thread_machine_telemetry_reconciles_with_cost_report() {
    let ds = dataset();
    let (rep, registry) = run_instrumented(&ds);

    // Critical rank: the registry picks the same rank the cost report's
    // critical path was taken from, and its phase table reproduces the
    // report's comm/comp/idle split to round-off.
    let crit = registry
        .critical_rank()
        .expect("instrumented run has ranks");
    let table = registry
        .phases(crit)
        .expect("critical rank has a phase table");
    assert!(
        (table.comm_time() - rep.critical.comm_time).abs() < 1e-9,
        "comm: table {} vs report {}",
        table.comm_time(),
        rep.critical.comm_time
    );
    assert!(
        (table.comp_time() - rep.critical.comp_time).abs() < 1e-9,
        "comp: table {} vs report {}",
        table.comp_time(),
        rep.critical.comp_time
    );
    assert!(
        (table.idle_time() - rep.critical.idle_time).abs() < 1e-9,
        "idle: table {} vs report {}",
        table.idle_time(),
        rep.critical.idle_time
    );
    assert!(
        (table.total_time() - rep.running_time()).abs() < 1e-9,
        "total: table {} vs report {}",
        table.total_time(),
        rep.running_time()
    );
}

#[test]
fn every_rank_has_a_phase_table_and_totals_cover_all_ranks() {
    let ds = dataset();
    let (_, registry) = run_instrumented(&ds);

    let ranks: Vec<usize> = registry.rank_tables().keys().copied().collect();
    assert_eq!(ranks, (0..P).collect::<Vec<_>>(), "one table per rank");

    // phase_totals is the merge of all rank tables; its time must equal
    // the per-rank sum (merge is associative, so order is irrelevant).
    let sum: f64 = registry
        .rank_tables()
        .values()
        .map(|t| t.total_time())
        .sum();
    assert!((registry.phase_totals().total_time() - sum).abs() < 1e-9);
}

#[test]
fn same_seed_runs_emit_byte_identical_reports() {
    let ds = dataset();
    let (_, reg_a) = run_instrumented(&ds);
    let (_, reg_b) = run_instrumented(&ds);
    assert_eq!(
        run_report_json(&reg_a),
        run_report_json(&reg_b),
        "run report must be deterministic for a fixed seed"
    );
}
