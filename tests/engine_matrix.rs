//! The cross-engine equivalence matrix.
//!
//! Every solver family is one backend-generic recurrence
//! (`exec::{lasso_family, svm_family}`) run on three engines, so the
//! contract is testable as a matrix rather than pairwise:
//!
//! * seq ≡ sim **bitwise** (the virtual cluster runs the identical global
//!   numerics and only attaches charges);
//! * dist ≡ seq **bitwise at p = 1** (one rank holds the whole matrix and
//!   the reduction is the identity), and to 1e-9/1e-10 at p > 1 (the
//!   reduction tree re-associates sums);
//! * all ranks of a dist run agree **bitwise** (replicated recurrences);
//! * overlap on ≡ overlap off **bitwise** (the overlap window only runs
//!   work that depends on the replicated RNG stream and `A`);
//! * sim and dist charge the *same* cost sequence: message/word/flop
//!   counters equal exactly, simulated times to 1e-9 — in both overlap
//!   modes (the shared-code-path guarantee of the backend refactor);
//! * each SA method matches its classical counterpart along the whole
//!   trace (the paper's exact-arithmetic claim, Table III);
//! * net ≡ dist **bitwise at every p** (the socket mesh's tree allreduce
//!   replicates the thread machine's combine order and the wire is
//!   bit-lossless), hence net ≡ seq/sim bitwise at p = 1 and to 1e-9 at
//!   p > 1 through the dist equivalences above; all net ranks agree
//!   bitwise; overlap on ≡ off bitwise on the real wire too.

use datagen::{binary_classification, dense_gaussian, planted_regression, uniform_sparse};
use datagen::{shard_plan, slice_nnz, PaperDataset, Task};
use mpisim::{CostModel, CostReport, ThreadMachine};
use saco::dist::{dist_kdcd, dist_sa_accbcd, dist_sa_bcd, dist_sa_svm, LassoRankData, SvmRankData};
use saco::net::{net_kdcd, net_sa_accbcd, net_sa_bcd, net_sa_svm, run_local};
use saco::prox::{ElasticNet, GroupLasso, Lasso, Regularizer};
use saco::seq::{acc_bcd, bcd, kdcd, sa_accbcd, sa_bcd, sa_svm, svm};
use saco::sim::{sim_kdcd, sim_sa_accbcd, sim_sa_bcd, sim_sa_svm};
use saco::stream::{
    stream_dist_kdcd, stream_kdcd, stream_sa_accbcd, stream_sa_bcd, stream_sa_svm,
    stream_sim_sa_accbcd, stream_sim_sa_bcd, stream_sim_sa_svm, stream_svm_ranks, StreamingMatrix,
};
use saco::{KdcdConfig, KdcdStats, KdcdTask, LassoConfig, SolveResult, SvmConfig, SvmLoss};
use sparsela::io::Dataset;
use sparsela::shard::{write_csc, write_csr};
use sparsela::KernelFn;

fn lasso_ds(seed: u64) -> Dataset {
    let a = uniform_sparse(120, 60, 0.15, seed);
    planted_regression(a, 5, 0.05, seed).dataset
}

fn svm_ds(seed: u64) -> Dataset {
    let a = uniform_sparse(90, 30, 0.3, seed);
    binary_classification(a, 0.08, seed).dataset
}

fn lasso_cfg(mu: usize, s: usize, overlap: bool) -> LassoConfig {
    LassoConfig {
        mu,
        s,
        lambda: 0.05,
        seed: 93,
        max_iters: 96,
        trace_every: 24,
        rel_tol: None,
        overlap,
        ..Default::default()
    }
}

fn run_seq_lasso<R: Regularizer>(
    ds: &Dataset,
    reg: &R,
    c: &LassoConfig,
    accel: bool,
) -> SolveResult {
    // Route through the public entry points so the matrix exercises the
    // shims users call, not the family directly.
    match (accel, c.s) {
        (true, 1) => acc_bcd(ds, reg, c),
        (true, _) => sa_accbcd(ds, reg, c),
        (false, 1) => bcd(ds, reg, c),
        (false, _) => sa_bcd(ds, reg, c),
    }
}

fn run_dist_lasso<R: Regularizer + Sync>(
    ds: &Dataset,
    reg: &R,
    c: &LassoConfig,
    accel: bool,
    p: usize,
) -> Vec<SolveResult> {
    let (_, blocks) = LassoRankData::split(ds, p, false);
    ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
        let data = &blocks[comm.rank()];
        if accel {
            dist_sa_accbcd(comm, data, reg, c)
        } else {
            dist_sa_bcd(comm, data, reg, c)
        }
    })
    .into_iter()
    .map(|(r, _)| r)
    .collect()
}

fn run_net_lasso<R: Regularizer + Sync>(
    ds: &Dataset,
    reg: &R,
    c: &LassoConfig,
    accel: bool,
    p: usize,
) -> Vec<SolveResult> {
    let (_, blocks) = LassoRankData::split(ds, p, false);
    run_local(p, |rank, comm| {
        if accel {
            net_sa_accbcd(comm, &blocks[rank], reg, c)
        } else {
            net_sa_bcd(comm, &blocks[rank], reg, c)
        }
    })
}

/// The net column of the Lasso matrix: real loopback sockets, P thread-
/// rank processes-in-miniature, {BCD, accBCD} × overlap {off, on} ×
/// p {1, 2, 4}. The socket engine must agree with the thread machine
/// **bitwise at every p** (shared tree association + lossless wire);
/// p = 1 is then bitwise-equal to seq, and p > 1 inherits dist's 1e-9
/// agreement with seq, both asserted explicitly.
#[test]
fn net_engine_matches_dist_bitwise_lasso() {
    let ds = lasso_ds(1);
    let reg = Lasso::new(0.05);
    for accel in [false, true] {
        for overlap in [false, true] {
            let c = lasso_cfg(4, 8, overlap);
            let seq_res = run_seq_lasso(&ds, &reg, &c, accel);
            for p in [1usize, 2, 4] {
                let what = format!("accel={accel} overlap={overlap} p={p}");
                let dist = run_dist_lasso(&ds, &reg, &c, accel, p);
                let net = run_net_lasso(&ds, &reg, &c, accel, p);
                for r in &net[1..] {
                    assert_eq!(r.x, net[0].x, "{what}: net ranks disagree");
                }
                for (rank, (n, d)) in net.iter().zip(&dist).enumerate() {
                    assert_eq!(n.x, d.x, "{what} rank {rank}: net vs dist iterates");
                    // Traced objective values reduce through the same
                    // tree, so they are bitwise equal too (times differ:
                    // wall-measured vs modeled).
                    assert_eq!(n.trace.len(), d.trace.len(), "{what} rank {rank}");
                    for (a, b) in n.trace.points().iter().zip(d.trace.points()) {
                        assert_eq!(a.value, b.value, "{what} rank {rank}: trace values");
                    }
                }
                if p == 1 {
                    assert_eq!(net[0].x, seq_res.x, "{what}: net p=1 vs seq");
                } else {
                    for (a, b) in net[0].x.iter().zip(&seq_res.x) {
                        assert!((a - b).abs() < 1e-9, "{what}: net vs seq: {a} vs {b}");
                    }
                }
            }
        }
    }
}

/// The net column for SVM: net ≡ dist bitwise (local `x` slices and the
/// replicated gap trace) at p ∈ {1, 2, 4}, both overlap modes.
#[test]
fn net_engine_matches_dist_bitwise_svm() {
    let ds = svm_ds(2);
    for overlap in [false, true] {
        let c = SvmConfig {
            loss: SvmLoss::L1,
            lambda: 1.0,
            s: 16,
            seed: 71,
            max_iters: 192,
            trace_every: 48,
            gap_tol: None,
            overlap,
        };
        for p in [1usize, 2, 4] {
            let what = format!("svm overlap={overlap} p={p}");
            let (_, blocks) = SvmRankData::split(&ds, p, false);
            let dist: Vec<SolveResult> = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                dist_sa_svm(comm, &blocks[comm.rank()], &c)
            })
            .into_iter()
            .map(|(r, _)| r)
            .collect();
            let net = run_local(p, |rank, comm| net_sa_svm(comm, &blocks[rank], &c));
            for (rank, (n, d)) in net.iter().zip(&dist).enumerate() {
                assert_eq!(n.x, d.x, "{what} rank {rank}: local x slices");
                assert_eq!(n.trace.len(), d.trace.len(), "{what} rank {rank}");
                for (a, b) in n.trace.points().iter().zip(d.trace.points()) {
                    assert_eq!(a.value, b.value, "{what} rank {rank}: gap trace");
                }
            }
        }
    }
}

/// Overlap must not perturb numerics on the real wire either: with
/// overlap the comm worker races the solver thread, and the bits must
/// not care.
#[test]
fn net_overlap_does_not_change_iterates() {
    let ds = lasso_ds(1);
    let reg = Lasso::new(0.05);
    let on = run_net_lasso(&ds, &reg, &lasso_cfg(4, 8, true), true, 4);
    let off = run_net_lasso(&ds, &reg, &lasso_cfg(4, 8, false), true, 4);
    assert_eq!(
        on[0].x, off[0].x,
        "overlap changed iterates on the socket mesh"
    );
    let svm_cfg = |overlap| SvmConfig {
        loss: SvmLoss::L2,
        lambda: 1.0,
        s: 8,
        seed: 72,
        max_iters: 96,
        trace_every: 24,
        gap_tol: None,
        overlap,
    };
    let svm_ds = svm_ds(2);
    let (_, blocks) = SvmRankData::split(&svm_ds, 4, false);
    let c_on = svm_cfg(true);
    let on = run_local(4, |rank, comm| net_sa_svm(comm, &blocks[rank], &c_on));
    let c_off = svm_cfg(false);
    let off = run_local(4, |rank, comm| net_sa_svm(comm, &blocks[rank], &c_off));
    for (a, b) in on.iter().zip(&off) {
        assert_eq!(a.x, b.x, "overlap changed SVM iterates on the socket mesh");
    }
}

/// The full lasso-family matrix: {BCD, accBCD, SA-BCD, SA-accBCD} ×
/// {Lasso, ElasticNet, GroupLasso} × overlap {on, off} × p {1, 4}.
#[test]
fn lasso_engine_matrix() {
    let ds = lasso_ds(1);
    // `Regularizer` is not dyn-compatible (`Self: Sized` bound), so the
    // regularizer axis of the matrix is monomorphised per concrete type.
    lasso_matrix_for_reg(&ds, &Lasso::new(0.05), "lasso");
    lasso_matrix_for_reg(&ds, &ElasticNet::new(0.4), "enet");
    lasso_matrix_for_reg(&ds, &GroupLasso::uniform(0.05, 60, 4), "glasso");
}

fn lasso_matrix_for_reg<R: Regularizer + Sync>(ds: &Dataset, reg: &R, reg_name: &str) {
    for (variant, accel, s) in [
        ("bcd", false, 1usize),
        ("acc_bcd", true, 1),
        ("sa_bcd", false, 8),
        ("sa_accbcd", true, 8),
    ] {
        let what = format!("{reg_name}/{variant}");
        for overlap in [false, true] {
            let c = lasso_cfg(4, s, overlap);
            let seq_res = run_seq_lasso(ds, reg, &c, accel);
            // seq ≡ sim, bitwise.
            let (sim_res, _) = if accel {
                sim_sa_accbcd(ds, reg, &c, 4, CostModel::cray_xc30(), false)
            } else {
                sim_sa_bcd(ds, reg, &c, 4, CostModel::cray_xc30(), false)
            };
            assert_eq!(seq_res.x, sim_res.x, "{what} overlap={overlap}: seq vs sim");
            for p in [1usize, 4] {
                let dist = run_dist_lasso(ds, reg, &c, accel, p);
                // Replicated recurrences: all ranks agree bitwise.
                for r in &dist[1..] {
                    assert_eq!(r.x, dist[0].x, "{what} p={p}: ranks disagree");
                }
                if p == 1 {
                    assert_eq!(dist[0].x, seq_res.x, "{what}: dist p=1 vs seq");
                } else {
                    for (a, b) in dist[0].x.iter().zip(&seq_res.x) {
                        assert!(
                            (a - b).abs() < 1e-9,
                            "{what} p={p} overlap={overlap}: {a} vs {b}"
                        );
                    }
                }
            }
        }
        // Overlap must not perturb numerics in any engine.
        let d_on = run_dist_lasso(ds, reg, &lasso_cfg(4, s, true), accel, 4);
        let d_off = run_dist_lasso(ds, reg, &lasso_cfg(4, s, false), accel, 4);
        assert_eq!(d_on[0].x, d_off[0].x, "{what}: overlap changed iterates");
    }
}

/// The SVM matrix: {classical (s = 1), SA (s = 16)} × {L1, L2} × p {1, 4}.
#[test]
fn svm_engine_matrix() {
    let ds = svm_ds(2);
    for loss in [SvmLoss::L1, SvmLoss::L2] {
        for s in [1usize, 16] {
            for overlap in [false, true] {
                let c = SvmConfig {
                    loss,
                    lambda: 1.0,
                    s,
                    seed: 71,
                    max_iters: 192,
                    trace_every: 48,
                    gap_tol: None,
                    overlap,
                };
                let what = format!("{loss:?} s={s} overlap={overlap}");
                let seq_res = if s == 1 {
                    svm(&ds, &c)
                } else {
                    sa_svm(&ds, &c)
                };
                let (sim_res, _) = sim_sa_svm(&ds, &c, 4, CostModel::cray_xc30(), false);
                assert_eq!(seq_res.x, sim_res.x, "{what}: seq vs sim");
                for p in [1usize, 4] {
                    let (part, blocks) = SvmRankData::split(&ds, p, false);
                    let dist: Vec<SolveResult> =
                        ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                            dist_sa_svm(comm, &blocks[comm.rank()], &c)
                        })
                        .into_iter()
                        .map(|(r, _)| r)
                        .collect();
                    // The gap trace is replicated bitwise on every rank.
                    for r in &dist[1..] {
                        assert_eq!(r.trace.len(), dist[0].trace.len());
                        for (a, b) in r.trace.points().iter().zip(dist[0].trace.points()) {
                            assert_eq!(a.value, b.value, "{what} p={p}: gap not replicated");
                        }
                    }
                    // Concatenated local slices reproduce the global x.
                    let mut x_global = Vec::new();
                    for (r, res) in dist.iter().enumerate() {
                        assert_eq!(res.x.len(), part.range(r).len());
                        x_global.extend_from_slice(&res.x);
                    }
                    if p == 1 {
                        assert_eq!(x_global, seq_res.x, "{what}: dist p=1 vs seq");
                    } else {
                        for (a, b) in x_global.iter().zip(&seq_res.x) {
                            assert!((a - b).abs() < 1e-9, "{what} p={p}: {a} vs {b}");
                        }
                    }
                }
            }
        }
    }
}

/// `SACO_SIMD` must be unobservable end to end: the same solve run under
/// the scalar and wide microkernel builds yields bitwise-identical
/// iterates on every engine — seq, the virtual cluster, the thread
/// machine (p = 2) and the socket mesh (p = 2), in both overlap modes.
/// The lane schedule, not the ISA, is the numerics contract; CI runs the
/// whole matrix again under each `SACO_SIMD` value to pin the same
/// property through the env-var path.
#[test]
fn simd_mode_is_unobservable_across_engines() {
    use sparsela::simd::{self, Mode};
    let ds = lasso_ds(1);
    let reg = Lasso::new(0.05);
    let ambient = simd::mode();
    for overlap in [false, true] {
        let c = lasso_cfg(4, 8, overlap);
        let run = |mode: Mode| {
            simd::set_mode(mode);
            let seq = run_seq_lasso(&ds, &reg, &c, true);
            let (sim, _) = sim_sa_accbcd(&ds, &reg, &c, 2, CostModel::cray_xc30(), false);
            let dist = run_dist_lasso(&ds, &reg, &c, true, 2);
            let net = run_net_lasso(&ds, &reg, &c, true, 2);
            (seq.x, sim.x, dist[0].x.clone(), net[0].x.clone())
        };
        let scalar = run(Mode::Scalar);
        let wide = run(Mode::Wide);
        assert_eq!(
            scalar, wide,
            "overlap={overlap}: SACO_SIMD changed engine iterates"
        );
    }
    simd::set_mode(ambient);
}

fn lasso_reports(c: &LassoConfig, accel: bool, p: usize) -> (CostReport, CostReport) {
    let ds = lasso_ds(3);
    let reg = Lasso::new(c.lambda);
    let (_, blocks) = LassoRankData::split(&ds, p, false);
    let (_, thread_rep) = ThreadMachine::run_report(p, CostModel::cray_xc30(), |comm| {
        let data = &blocks[comm.rank()];
        if accel {
            dist_sa_accbcd(comm, data, &reg, c)
        } else {
            dist_sa_bcd(comm, data, &reg, c)
        }
    });
    let (_, sim_rep) = if accel {
        sim_sa_accbcd(&ds, &reg, c, p, CostModel::cray_xc30(), false)
    } else {
        sim_sa_bcd(&ds, &reg, c, p, CostModel::cray_xc30(), false)
    };
    (thread_rep, sim_rep)
}

fn assert_reports_match(thread_rep: &CostReport, sim_rep: &CostReport, what: &str) {
    let (t, v) = (&thread_rep.critical, &sim_rep.critical);
    // Strict: the two engines charge through the same backend code path,
    // so the counters are equal by construction, not approximately.
    assert_eq!(t.messages, v.messages, "{what}: message counters diverge");
    assert_eq!(t.words, v.words, "{what}: word counters diverge");
    assert_eq!(t.flops, v.flops, "{what}: flop counters diverge");
    let rel = (thread_rep.running_time() - sim_rep.running_time()).abs() / sim_rep.running_time();
    assert!(
        rel < 1e-9,
        "{what}: simulated times diverge: thread {} vs virtual {} (rel {rel})",
        thread_rep.running_time(),
        sim_rep.running_time()
    );
}

/// The decisive cross-engine check, now strict and across the whole
/// family: the thread machine and the virtual cluster must charge the
/// identical cost sequence — in both overlap modes, accelerated and not.
#[test]
fn sim_and_dist_charges_agree_exactly_lasso() {
    for accel in [false, true] {
        for overlap in [false, true] {
            let c = LassoConfig {
                mu: 2,
                s: 8,
                lambda: 0.2,
                seed: 48,
                max_iters: 64,
                trace_every: 16,
                rel_tol: None,
                overlap,
                ..Default::default()
            };
            let (thread_rep, sim_rep) = lasso_reports(&c, accel, 4);
            let what = format!("lasso accel={accel} overlap={overlap}");
            assert_reports_match(&thread_rep, &sim_rep, &what);
        }
    }
}

#[test]
fn sim_and_dist_charges_agree_exactly_svm() {
    let ds = svm_ds(4);
    for overlap in [false, true] {
        let c = SvmConfig {
            loss: SvmLoss::L1,
            lambda: 1.0,
            s: 8,
            seed: 49,
            max_iters: 64,
            trace_every: 16,
            gap_tol: None,
            overlap,
        };
        let p = 4;
        let (_, blocks) = SvmRankData::split(&ds, p, false);
        let (_, thread_rep) = ThreadMachine::run_report(p, CostModel::cray_xc30(), |comm| {
            dist_sa_svm(comm, &blocks[comm.rank()], &c)
        });
        let (_, sim_rep) = sim_sa_svm(&ds, &c, p, CostModel::cray_xc30(), false);
        assert_reports_match(&thread_rep, &sim_rep, &format!("svm overlap={overlap}"));
    }
}

#[test]
fn overlap_never_slows_the_simulated_run() {
    let run = |overlap: bool| {
        let c = LassoConfig {
            mu: 2,
            s: 16,
            lambda: 0.2,
            seed: 50,
            max_iters: 128,
            trace_every: 0,
            rel_tol: None,
            overlap,
            ..Default::default()
        };
        lasso_reports(&c, true, 8)
    };
    let (t_on, v_on) = run(true);
    let (t_off, v_off) = run(false);
    // Same collectives and flops either way — overlap only hides time.
    assert_eq!(v_on.critical.messages, v_off.critical.messages);
    assert_eq!(v_on.critical.flops, v_off.critical.flops);
    assert!(v_on.running_time() <= v_off.running_time() + 1e-12);
    assert!(t_on.running_time() <= t_off.running_time() + 1e-12);
}

#[test]
fn rank_count_does_not_change_results() {
    let ds = PaperDataset::News20.generate(0.04, 3).dataset;
    let cfg = LassoConfig {
        mu: 1,
        s: 4,
        lambda: 0.2,
        seed: 47,
        max_iters: 96,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let reg = Lasso::new(cfg.lambda);
    let mut finals = Vec::new();
    for p in [1usize, 2, 3, 8] {
        let (_, blocks) = LassoRankData::split(&ds, p, false);
        let res = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
            dist_sa_accbcd(comm, &blocks[comm.rank()], &reg, &cfg)
        });
        finals.push(res[0].0.final_value());
    }
    for f in &finals[1..] {
        let rel = (f - finals[0]).abs() / finals[0];
        assert!(rel < 1e-10, "objective varies with P: {finals:?}");
    }
}

// ---------------------------------------------------------------------------
// SA ≡ classical along the whole trace: the paper's exact-arithmetic claim
// (Table III), on the registry's dataset structures.
// ---------------------------------------------------------------------------

fn assert_traces_match(a: &SolveResult, b: &SolveResult, tol: f64, what: &str) {
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace lengths differ");
    let scale = a.trace.initial_value().abs();
    for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
        let denom = p.value.abs().max(1e-9 * scale);
        let rel = (p.value - q.value).abs() / denom;
        assert!(rel < tol, "{what} iter {}: rel err {rel}", p.iter);
    }
}

#[test]
fn lasso_sa_equivalence_on_registry_structures() {
    // one dense, one uniform-sparse, one power-law dataset
    for ds in [
        PaperDataset::Leu,
        PaperDataset::Covtype,
        PaperDataset::News20,
    ] {
        let g = ds.generate(0.05, 7);
        let lambda = 0.1;
        let reg = Lasso::new(lambda);
        for (mu, s) in [(1usize, 64usize), (4, 16)] {
            let c = LassoConfig {
                mu,
                s,
                lambda,
                seed: 2024,
                max_iters: 320,
                trace_every: 40,
                rel_tol: None,
                ..Default::default()
            };
            let classic = acc_bcd(&g.dataset, &reg, &c);
            let sa = sa_accbcd(&g.dataset, &reg, &c);
            assert_traces_match(&classic, &sa, 1e-9, g.info.name);
            let classic = bcd(&g.dataset, &reg, &c);
            let sa = sa_bcd(&g.dataset, &reg, &c);
            assert_traces_match(&classic, &sa, 1e-9, g.info.name);
        }
    }
}

#[test]
fn sa_equivalence_holds_for_elastic_net_and_group_lasso() {
    let g = PaperDataset::Epsilon.generate(0.05, 9);
    fn check<R: Regularizer>(ds: &Dataset, reg: &R, mu: usize) {
        let c = LassoConfig {
            mu,
            s: 24,
            lambda: 0.3,
            seed: 31,
            max_iters: 240,
            trace_every: 40,
            rel_tol: None,
            ..Default::default()
        };
        let classic = acc_bcd(ds, reg, &c);
        let sa = sa_accbcd(ds, reg, &c);
        assert_eq!(classic.trace.len(), sa.trace.len());
        for (p, q) in classic.trace.points().iter().zip(sa.trace.points()) {
            let rel = (p.value - q.value).abs() / p.value.abs().max(1e-300);
            assert!(rel < 1e-9, "iter {}: rel err {rel}", p.iter);
        }
    }
    check(&g.dataset, &ElasticNet::new(0.4), 4);
    let n = g.dataset.num_features();
    check(&g.dataset, &GroupLasso::uniform(0.3, n, 4), 4);
}

#[test]
fn svm_sa_equivalence_on_registry_structures() {
    for ds in [
        PaperDataset::W1a,
        PaperDataset::Duke,
        PaperDataset::Rcv1Binary,
    ] {
        let g = ds.generate_for_task(Task::Classification, 0.1, 11);
        for loss in [SvmLoss::L1, SvmLoss::L2] {
            let c = SvmConfig {
                loss,
                lambda: 1.0,
                s: 48,
                seed: 77,
                max_iters: 960,
                trace_every: 120,
                gap_tol: None,
                overlap: true,
            };
            let classic = svm(&g.dataset, &c);
            let sa = sa_svm(&g.dataset, &c);
            assert_eq!(classic.trace.len(), sa.trace.len());
            let init = classic.trace.initial_value();
            for (p, q) in classic.trace.points().iter().zip(sa.trace.points()) {
                // Floor the denominator: once the gap has decayed to
                // ~machine-ε of the problem scale, agreement in absolute
                // terms (relative to the initial gap) is what stability
                // means.
                let denom = p.value.abs().max(1e-6 * init);
                let rel = (p.value - q.value).abs() / denom;
                assert!(
                    rel < 1e-8,
                    "{} {loss:?} iter {}: rel {rel}",
                    g.info.name,
                    p.iter
                );
            }
        }
    }
}

#[test]
fn table_iii_machine_precision_at_s_1000() {
    // The headline Table III numbers: final relative objective error at
    // s = 1000 sits at machine precision.
    let g = PaperDataset::Leu.generate(1.0, 13);
    let lambda = saco_lambda(&g.dataset);
    let c = LassoConfig {
        mu: 1,
        s: 1000,
        lambda,
        seed: 1000,
        max_iters: 2000,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let reg = Lasso::new(lambda);
    let classic = acc_bcd(&g.dataset, &reg, &c);
    let sa = sa_accbcd(&g.dataset, &reg, &c);
    let rel = sa.relative_error_vs(&classic);
    assert!(rel < 5e-13, "relative objective error {rel} at s=1000");
}

/// λ at 10% of ‖Aᵀb‖∞ (enough to matter, not enough to zero everything).
fn saco_lambda(ds: &Dataset) -> f64 {
    let atb = ds.a.spmv_t(&ds.b);
    0.1 * sparsela::vecops::inf_norm(&atb)
}

// ---------------------------------------------------------------------------
// The streamed column: an out-of-core shard directory is just another
// `SliceSource`, so every engine that accepts one must produce **bitwise**
// the in-memory run — iterates AND traced objectives — and, on the virtual
// cluster, charge the identical cost sequence (the partition weights come
// from the minor-nnz sidecar, integer-equal to the in-memory row scan).
// ---------------------------------------------------------------------------

fn shard_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("saco_matrix_shards_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn assert_bitwise(streamed: &SolveResult, mem: &SolveResult, what: &str) {
    assert_eq!(streamed.x, mem.x, "{what}: streamed vs in-memory iterates");
    assert_eq!(
        streamed.trace.len(),
        mem.trace.len(),
        "{what}: trace length"
    );
    for (s, m) in streamed.trace.points().iter().zip(mem.trace.points()) {
        assert_eq!(s.value, m.value, "{what}: traced objective moved a bit");
    }
}

#[test]
fn streamed_lasso_is_bitwise_in_memory_on_seq_and_sim() {
    let ds = lasso_ds(1);
    let csc = ds.a.to_csc();
    let dir = shard_dir("lasso");
    let bounds = shard_plan(&slice_nnz(&csc), 7);
    write_csc(&dir, &csc, &bounds, Some(&ds.b)).expect("write shard dir");
    let reg = Lasso::new(0.05);
    for accel in [false, true] {
        for overlap in [false, true] {
            let c = lasso_cfg(4, 8, overlap);
            let what = format!("stream lasso accel={accel} overlap={overlap}");

            // Sequential: lookahead prefetch behind compute, tight budget.
            let mem = run_seq_lasso(&ds, &reg, &c, accel);
            let a = StreamingMatrix::open(&dir, 64 * 1024).expect("open stream");
            let streamed = if accel {
                stream_sa_accbcd(&a, &ds.b, &reg, &c)
            } else {
                stream_sa_bcd(&a, &ds.b, &reg, &c)
            };
            assert_bitwise(&streamed, &mem, &what);
            let st = a.io_stats();
            assert!(
                st.prefetch_hits + st.prefetch_waits > 0,
                "{what}: lookahead prefetch never engaged"
            );

            // Virtual cluster: same iterates and the identical charges.
            let model = CostModel::cray_xc30();
            let (sim_mem, mem_rep) = if accel {
                sim_sa_accbcd(&ds, &reg, &c, 4, model, false)
            } else {
                sim_sa_bcd(&ds, &reg, &c, 4, model, false)
            };
            let a = StreamingMatrix::open(&dir, 64 * 1024).expect("open stream");
            let (sim_st, st_rep) = if accel {
                stream_sim_sa_accbcd(&a, &ds.b, &reg, &c, 4, model, false)
            } else {
                stream_sim_sa_bcd(&a, &ds.b, &reg, &c, 4, model, false)
            }
            .expect("stream sim");
            assert_bitwise(&sim_st, &sim_mem, &format!("{what} (sim)"));
            assert_reports_match(&st_rep, &mem_rep, &format!("{what} (sim charges)"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_svm_is_bitwise_in_memory_on_seq_and_sim() {
    let ds = svm_ds(2);
    let dir = shard_dir("svm");
    let bounds = shard_plan(&slice_nnz(&ds.a), 5);
    write_csr(&dir, &ds.a, &bounds, Some(&ds.b)).expect("write shard dir");
    for loss in [SvmLoss::L1, SvmLoss::L2] {
        for overlap in [false, true] {
            let c = SvmConfig {
                loss,
                lambda: 1.0,
                s: 16,
                seed: 71,
                max_iters: 192,
                trace_every: 48,
                gap_tol: None,
                overlap,
            };
            let what = format!("stream svm {loss:?} overlap={overlap}");

            let mem = sa_svm(&ds, &c);
            let a = StreamingMatrix::open(&dir, 64 * 1024).expect("open stream");
            let streamed = stream_sa_svm(&a, &ds.b, &c);
            assert_bitwise(&streamed, &mem, &what);

            let model = CostModel::cray_xc30();
            let (sim_mem, mem_rep) = sim_sa_svm(&ds, &c, 4, model, false);
            let a = StreamingMatrix::open(&dir, 64 * 1024).expect("open stream");
            let (sim_st, st_rep) =
                stream_sim_sa_svm(&a, &ds.b, &c, 4, model, false).expect("stream sim");
            assert_bitwise(&sim_st, &sim_mem, &format!("{what} (sim)"));
            assert_reports_match(&st_rep, &mem_rep, &format!("{what} (sim charges)"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sa_solvers_with_s_1_are_bitwise_classical_shapes() {
    // s = 1 must agree with the classical solver at every traced point to
    // extremely tight tolerance (identical computation graph modulo benign
    // reassociation in the Gram kernel).
    let g = PaperDataset::Rcv1Binary.generate(0.05, 17);
    let c = SvmConfig {
        loss: SvmLoss::L1,
        lambda: 1.0,
        s: 1,
        seed: 5,
        max_iters: 400,
        trace_every: 50,
        gap_tol: None,
        overlap: true,
    };
    let a = svm(&g.dataset, &c);
    let b = sa_svm(&g.dataset, &c);
    for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
        assert!((p.value - q.value).abs() <= 1e-12 * p.value.abs().max(1.0));
    }
}

// ---------------------------------------------------------------------------
// Refactor guard: the family-spec driver must not move a single charge.
// ---------------------------------------------------------------------------

/// Byte-compare a deterministic `saco-telemetry/v1` report against a
/// committed golden captured before the `exec/driver.rs` refactor. Any
/// drift in counters, charge totals, collective counts, or trace-derived
/// metadata is a behavior change the refactor promised not to make.
/// Regenerate (only when a change is *intended*) with `SACO_BLESS=1`.
fn golden_check(name: &str, doc: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(name);
    if std::env::var_os("SACO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir goldens");
        std::fs::write(&path, doc).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {name} unreadable ({e}); bless with SACO_BLESS=1"));
    assert_eq!(
        doc, want,
        "{name}: registry report drifted from the pre-refactor golden"
    );
}

#[test]
fn registry_reports_match_pre_refactor_goldens() {
    use saco::sim::{sim_sa_accbcd_instrumented, sim_sa_bcd_instrumented, sim_sa_svm_instrumented};
    use saco_telemetry::run_report_json;

    let ds = lasso_ds(77);
    let reg = Lasso::new(0.05);
    // Overlapped accelerated run: exercises the double-buffered block
    // entry, the overlap closure, and the piggybacked trace scalar.
    let (_, _, t) = sim_sa_accbcd_instrumented(
        &ds,
        &reg,
        &lasso_cfg(2, 8, true),
        8,
        CostModel::cray_xc30(),
        false,
    );
    golden_check("sim_lasso_report.json", &run_report_json(&t));
    // Non-overlapped plain BCD: the sample-at-entry path and the
    // single-sequence update charges.
    let (_, _, t) = sim_sa_bcd_instrumented(
        &ds,
        &reg,
        &lasso_cfg(3, 4, false),
        4,
        CostModel::cray_xc30(),
        true,
    );
    golden_check("sim_bcd_report.json", &run_report_json(&t));
    let sds = svm_ds(78);
    let sc = SvmConfig {
        loss: SvmLoss::L2,
        lambda: 1.0,
        s: 8,
        seed: 5,
        max_iters: 96,
        trace_every: 24,
        gap_tol: None,
        overlap: true,
    };
    let (_, _, t) = sim_sa_svm_instrumented(&sds, &sc, 8, CostModel::cray_xc30(), false);
    golden_check("sim_svm_report.json", &run_report_json(&t));
}

// ---------------------------------------------------------------------------
// The kernel column: K-DCD/K-BDCD is the third family through the same
// driver, so it owes the same matrix — with one twist. The exchanged
// payload is *raw dot-product rows* (kernel transforms are nonlinear and
// cannot be summed), so at p > 1 the allreduce tree re-associates the
// feature sums and the transformed kernel entries carry last-ulp noise
// into the iterate: dist ≡ seq is bitwise at p = 1 and 1e-9 at p > 1,
// exactly like the linear families. Everything structural stays bitwise:
// seq ≡ sim, all ranks replicated (iterates *and* cache counters — the
// skip-the-collective decision rides on them), net ≡ dist at every p,
// overlap on ≡ off, streamed ≡ in-memory, and the worker-thread count.
// ---------------------------------------------------------------------------

fn kdcd_ds(seed: u64) -> Dataset {
    let a = dense_gaussian(48, 16, seed);
    binary_classification(a, 0.05, seed).dataset
}

/// The kernel axis of the matrix: one PSD kernel per dual task, so both
/// recurrences (K-DCD's projected step, K-BDCD's exact ridge step) and
/// both kernel transforms are under every contract below.
fn kdcd_kernels() -> [(KernelFn, KdcdTask, &'static str); 2] {
    [
        (
            KernelFn::Rbf { gamma: 0.5 },
            KdcdTask::Svm(SvmLoss::L1),
            "rbf/ksvm",
        ),
        (
            KernelFn::parse("poly:d=2,gamma=0.5,coef0=1").expect("kernel spec"),
            KdcdTask::Ridge,
            "poly/kridge",
        ),
    ]
}

fn kdcd_cfg(kernel: KernelFn, task: KdcdTask, overlap: bool) -> KdcdConfig {
    KdcdConfig {
        task,
        kernel,
        lambda: 0.5,
        s: 8,
        seed: 61,
        max_iters: 128,
        trace_every: 32,
        overlap,
        cache_budget_bytes: 1 << 20,
    }
}

fn run_dist_kdcd(ds: &Dataset, p: usize, c: &KdcdConfig) -> Vec<(SolveResult, KdcdStats)> {
    let (_, blocks) = SvmRankData::split(ds, p, false);
    ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
        dist_kdcd(comm, &blocks[comm.rank()], c)
    })
    .into_iter()
    .map(|(r, _)| r)
    .collect()
}

/// The full kernel-family matrix: {rbf × K-SVM, poly × K-BDCD ridge} ×
/// overlap {off, on} × worker threads {1, 4} × p {1, 4}.
#[test]
fn kdcd_engine_matrix() {
    let ds = kdcd_ds(6);
    for (kernel, task, name) in kdcd_kernels() {
        for overlap in [false, true] {
            let c = kdcd_cfg(kernel, task, overlap);
            let mut per_threads: Vec<Vec<f64>> = Vec::new();
            for threads in [1usize, 4] {
                saco_par::set_threads(threads);
                let what = format!("{name} overlap={overlap} threads={threads}");
                let (seq_res, seq_stats) = kdcd(&ds, &c);
                // seq ≡ sim bitwise — iterates and the replicated
                // hit/miss/eviction stream.
                let (sim_res, sim_stats, _) = sim_kdcd(&ds, &c, 4, CostModel::cray_xc30(), false);
                assert_eq!(seq_res.x, sim_res.x, "{what}: seq vs sim");
                assert_eq!(seq_stats.cache, sim_stats.cache, "{what}: cache streams");
                for p in [1usize, 4] {
                    let dist = run_dist_kdcd(&ds, p, &c);
                    for (rank, (res, stats)) in dist.iter().enumerate().skip(1) {
                        assert_eq!(res.x, dist[0].0.x, "{what} p={p} rank {rank}");
                        assert_eq!(stats.cache, dist[0].1.cache, "{what} p={p} rank {rank}");
                        assert_eq!(
                            stats.exchange_skipped, dist[0].1.exchange_skipped,
                            "{what} p={p} rank {rank}: skip decisions must replicate"
                        );
                    }
                    if p == 1 {
                        assert_eq!(dist[0].0.x, seq_res.x, "{what}: dist p=1 vs seq");
                    } else {
                        for (a, b) in dist[0].0.x.iter().zip(&seq_res.x) {
                            assert!(
                                (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                                "{what} p={p}: {a} vs {b}"
                            );
                        }
                    }
                }
                per_threads.push(seq_res.x);
            }
            saco_par::set_threads(1);
            assert_eq!(
                per_threads[0], per_threads[1],
                "{name} overlap={overlap}: worker-thread count changed the bits"
            );
        }
    }
}

/// The net column for the kernel family: the socket mesh reduces the raw
/// dot rows up the same tree as the thread machine, so net ≡ dist is
/// bitwise at every p — iterates, the replicated objective trace, and the
/// cache/exchange counters (the collective-skip schedule must agree or
/// the mesh deadlocks; equality here is the strong form of that).
#[test]
fn net_engine_matches_dist_bitwise_kdcd() {
    let ds = kdcd_ds(7);
    for overlap in [false, true] {
        let c = kdcd_cfg(
            KernelFn::Rbf { gamma: 0.5 },
            KdcdTask::Svm(SvmLoss::L1),
            overlap,
        );
        let (seq_res, _) = kdcd(&ds, &c);
        for p in [1usize, 2, 4] {
            let what = format!("kdcd overlap={overlap} p={p}");
            let (_, blocks) = SvmRankData::split(&ds, p, false);
            let dist: Vec<(SolveResult, KdcdStats)> =
                ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                    dist_kdcd(comm, &blocks[comm.rank()], &c)
                })
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            let net = run_local(p, |rank, comm| net_kdcd(comm, &blocks[rank], &c));
            for (n, _) in &net[1..] {
                assert_eq!(n.x, net[0].0.x, "{what}: net ranks disagree");
            }
            for (rank, ((n, ns), (d, dstats))) in net.iter().zip(&dist).enumerate() {
                assert_eq!(n.x, d.x, "{what} rank {rank}: net vs dist iterates");
                assert_eq!(n.trace.len(), d.trace.len(), "{what} rank {rank}");
                for (a, b) in n.trace.points().iter().zip(d.trace.points()) {
                    assert_eq!(a.value, b.value, "{what} rank {rank}: objective trace");
                }
                assert_eq!(ns.cache, dstats.cache, "{what} rank {rank}: cache streams");
                assert_eq!(
                    ns.exchange_skipped, dstats.exchange_skipped,
                    "{what} rank {rank}: skip schedules"
                );
                assert_eq!(
                    ns.exchange_words, dstats.exchange_words,
                    "{what} rank {rank}: exchanged words"
                );
            }
            if p == 1 {
                assert_eq!(net[0].0.x, seq_res.x, "{what}: net p=1 vs seq");
            } else {
                for (a, b) in net[0].0.x.iter().zip(&seq_res.x) {
                    assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                        "{what}: net vs seq: {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// Strict charge agreement for the kernel family: the thread machine and
/// the virtual cluster must charge the identical cost sequence — message,
/// word, and flop counters exactly equal, times to 1e-9 — in both overlap
/// modes and for both kernels. This pins the tile charge (2·misses·nnzᵣ
/// per rank), the norms-pass charge, and the skip-the-collective rounds
/// to one shared code path.
#[test]
fn sim_and_dist_charges_agree_exactly_kdcd() {
    let ds = kdcd_ds(8);
    for (kernel, task, name) in kdcd_kernels() {
        for overlap in [false, true] {
            let c = kdcd_cfg(kernel, task, overlap);
            let p = 4;
            let (_, blocks) = SvmRankData::split(&ds, p, false);
            let (_, thread_rep) = ThreadMachine::run_report(p, CostModel::cray_xc30(), |comm| {
                dist_kdcd(comm, &blocks[comm.rank()], &c)
            });
            let (_, _, sim_rep) = sim_kdcd(&ds, &c, p, CostModel::cray_xc30(), false);
            assert_reports_match(
                &thread_rep,
                &sim_rep,
                &format!("kdcd {name} overlap={overlap}"),
            );
        }
    }
}

/// The streamed column for the kernel family: a CSR shard directory run
/// through `stream_kdcd` (and, windowed, through `stream_dist_kdcd` on
/// the thread machine) is bitwise the in-memory run.
#[test]
fn streamed_kdcd_is_bitwise_in_memory() {
    let ds = kdcd_ds(9);
    let dir = shard_dir("kdcd");
    let bounds = shard_plan(&slice_nnz(&ds.a), 5);
    write_csr(&dir, &ds.a, &bounds, Some(&ds.b)).expect("write shard dir");
    for (kernel, task, name) in kdcd_kernels() {
        for overlap in [false, true] {
            let c = kdcd_cfg(kernel, task, overlap);
            let what = format!("stream kdcd {name} overlap={overlap}");
            let (mem, mem_stats) = kdcd(&ds, &c);
            let a = StreamingMatrix::open(&dir, 64 * 1024).expect("open stream");
            let (streamed, st_stats) = stream_kdcd(&a, &ds.b, &c);
            assert_bitwise(&streamed, &mem, &what);
            assert_eq!(st_stats.cache, mem_stats.cache, "{what}: cache streams");

            let p = 2;
            let (_, mem_blocks) = SvmRankData::split(&ds, p, false);
            let mem_dist = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                dist_kdcd(comm, &mem_blocks[comm.rank()], &c)
            });
            let (_, ranks) = stream_svm_ranks(&dir, p, false, 1 << 20).expect("rank split");
            let st_dist = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
                stream_dist_kdcd(comm, &ranks[comm.rank()], &c)
            });
            for (rank, (((sr, ss), _), ((mr, ms), _))) in st_dist.iter().zip(&mem_dist).enumerate()
            {
                assert_eq!(sr.x, mr.x, "{what} p={p} rank {rank}: streamed dist");
                assert_eq!(ss.cache, ms.cache, "{what} p={p} rank {rank}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The warm-start column: the λ-path and CV sweeps ride the same driver as
// the single solves, so they owe the matrix too — path on the virtual
// cluster is bitwise the sequential path, and a CV sweep must not care
// how many pooled worker threads run the kernels.
// ---------------------------------------------------------------------------

/// Path on sim ≡ seq **bitwise**: every segment's solution vector,
/// objective, and support size. The path driver warm-starts segment k+1
/// from segment k, so a single bit of drift in an early segment would
/// cascade — equality of the *last* point is the strong form of the whole
/// chain agreeing.
#[test]
fn sim_path_matches_seq_path_bitwise() {
    let ds = lasso_ds(5);
    let c = lasso_cfg(4, 8, true);
    let seq_path = saco::path::lasso_path(&ds, &c, 8, 0.01, Lasso::new);
    let (sim_path, rep) = saco::sim::sim_lasso_path(
        &ds,
        &c,
        8,
        0.01,
        Lasso::new,
        4,
        CostModel::cray_xc30(),
        false,
    );
    assert_eq!(seq_path.points.len(), sim_path.points.len());
    for (k, (a, b)) in seq_path.points.iter().zip(&sim_path.points).enumerate() {
        assert_eq!(
            a.lambda.to_bits(),
            b.lambda.to_bits(),
            "segment {k}: λ grid"
        );
        assert_eq!(a.x, b.x, "segment {k}: seq vs sim path solution");
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "segment {k}: objective"
        );
        assert_eq!(a.nonzeros, b.nonzeros, "segment {k}: support size");
    }
    // The virtual cluster also charged the sweep (one allreduce chain per
    // segment), not just computed it.
    assert!(rep.critical.messages > 0 && rep.running_time() > 0.0);
}

/// A CV sweep is bitwise invariant under the pooled worker-thread count:
/// fold means, standard errors, the selected λs, and the diverged-fold
/// count all come out identical at 1 and 4 threads (the lane-reduction
/// contract of the SIMD kernels extends through the fold solves).
#[test]
fn cv_is_deterministic_across_worker_threads() {
    let ds = lasso_ds(6);
    let c = lasso_cfg(2, 8, false);
    let run = |threads: usize| {
        saco_par::set_threads(threads);
        saco::crossval::cross_validate_lasso(&ds, &c, 4, 6, 0.01, Lasso::new)
    };
    let one = run(1);
    let four = run(4);
    saco_par::set_threads(1);
    assert_eq!(one.points.len(), four.points.len());
    for (k, (a, b)) in one.points.iter().zip(&four.points).enumerate() {
        assert_eq!(a.lambda.to_bits(), b.lambda.to_bits(), "λ {k}");
        assert_eq!(
            a.mean_mse.to_bits(),
            b.mean_mse.to_bits(),
            "λ {k}: fold mean moved with the thread count"
        );
        assert_eq!(a.std_error.to_bits(), b.std_error.to_bits(), "λ {k}");
    }
    assert_eq!(one.nan_folds, four.nan_folds);
    assert_eq!(one.best_lambda().to_bits(), four.best_lambda().to_bits());
    assert_eq!(one.lambda_1se().to_bits(), four.lambda_1se().to_bits());
}

/// Convergence on the url-shaped stand-in (power-law sparse, the paper's
/// widest dataset) for both dual tasks: the traced dual objective must
/// decrease monotonically and end clearly below zero. This is the
/// kernel-family analogue of the registry-structure equivalence suite —
/// near-empty power-law rows are exactly where a kernel cache earns its
/// keep, so the cache must also report real traffic.
#[test]
fn kdcd_converges_on_url_shape_subsample() {
    let g = PaperDataset::Url.generate_for_task(Task::Classification, 0.02, 19);
    let ds = &g.dataset;
    for (kernel, task, name) in kdcd_kernels() {
        let mut c = kdcd_cfg(kernel, task, true);
        c.max_iters = 256;
        c.trace_every = 64;
        let (res, stats) = kdcd(ds, &c);
        assert!(
            res.final_value() < -1e-4,
            "{name} on url: final {}",
            res.final_value()
        );
        let vals: Vec<f64> = res.trace.points().iter().map(|p| p.value).collect();
        assert!(
            vals.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "{name} on url: dual objective must decrease: {vals:?}"
        );
        assert!(stats.cache.misses > 0 && stats.tile_rows > 0, "{name}");
    }
}
