//! End-to-end pipeline tests: registry → LIBSVM round-trip → partition →
//! solve → evaluate, the way a downstream user would drive the library.

use datagen::{imbalance_factor, PaperDataset, Task};
use mpisim::{CostModel, ThreadMachine};
use saco::dist::{dist_sa_svm, SvmRankData};
use saco::prox::Lasso;
use saco::seq::sa_accbcd;
use saco::{LassoConfig, SvmConfig, SvmLoss};
use sparsela::io::{read_libsvm, write_libsvm};
use std::io::Cursor;

#[test]
fn every_registry_dataset_solves_at_small_scale() {
    for ds in PaperDataset::ALL {
        let g = ds.generate(0.03, 101);
        match g.info.task {
            Task::Regression => {
                let atb = g.dataset.a.spmv_t(&g.dataset.b);
                let lambda = 0.2 * sparsela::vecops::inf_norm(&atb).max(1e-12);
                let c = LassoConfig {
                    mu: 2.min(g.dataset.num_features()),
                    s: 8,
                    lambda,
                    seed: 1,
                    max_iters: 200,
                    trace_every: 50,
                    rel_tol: None,
                    ..Default::default()
                };
                let res = sa_accbcd(&g.dataset, &Lasso::new(lambda), &c);
                assert!(
                    res.final_value() <= res.trace.initial_value() * (1.0 + 1e-12),
                    "{}: objective went up",
                    g.info.name
                );
            }
            Task::Classification => {
                let c = SvmConfig {
                    loss: SvmLoss::L2,
                    lambda: 1.0,
                    s: 16,
                    seed: 1,
                    max_iters: 400,
                    trace_every: 100,
                    gap_tol: None,
                    overlap: true,
                };
                let res = saco::seq::sa_svm(&g.dataset, &c);
                assert!(
                    res.final_value() < res.trace.initial_value(),
                    "{}: duality gap did not shrink",
                    g.info.name
                );
            }
        }
    }
}

#[test]
fn libsvm_roundtrip_preserves_solver_results() {
    // Write a generated dataset in LIBSVM format, read it back, solve both
    // and compare — the external-format path a real user would take.
    let g = PaperDataset::News20.generate(0.02, 102);
    let mut buf = Vec::new();
    write_libsvm(&mut buf, &g.dataset).expect("serialize");
    let reread = read_libsvm(Cursor::new(&buf), g.dataset.num_features()).expect("parse");
    assert_eq!(reread.a, g.dataset.a);
    assert_eq!(reread.b, g.dataset.b);
    let c = LassoConfig {
        mu: 4,
        s: 8,
        lambda: 0.1,
        seed: 2,
        max_iters: 120,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let a = sa_accbcd(&g.dataset, &Lasso::new(0.1), &c);
    let b = sa_accbcd(&reread, &Lasso::new(0.1), &c);
    assert_eq!(a.x, b.x);
}

#[test]
fn balanced_partitioning_reduces_imbalance_on_skewed_data() {
    // The §VI straggler observation, end to end on a registry dataset.
    let g = PaperDataset::News20Binary.generate(0.05, 103);
    let n = g.dataset.num_features();
    let csc = g.dataset.a.to_csc();
    let weights: Vec<u64> = (0..n).map(|j| csc.col_nnz(j) as u64).collect();
    let p = 32;
    let naive = datagen::block_partition(n, p);
    let balanced = datagen::balanced_partition(&weights, p);
    let f_naive = imbalance_factor(&weights, &naive);
    let f_bal = imbalance_factor(&weights, &balanced);
    assert!(
        f_naive > 2.0,
        "power-law columns should make the naive split imbalanced, got {f_naive}"
    );
    assert!(f_bal < f_naive / 2.0, "balanced {f_bal} vs naive {f_naive}");
}

#[test]
fn distributed_svm_runs_on_a_registry_dataset() {
    let g = PaperDataset::Rcv1Binary.generate(0.03, 104);
    let p = 4;
    let (_, blocks) = SvmRankData::split(&g.dataset, p, true);
    let c = SvmConfig {
        loss: SvmLoss::L1,
        lambda: 1.0,
        s: 16,
        seed: 3,
        max_iters: 160,
        trace_every: 40,
        gap_tol: None,
        overlap: true,
    };
    let results = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
        dist_sa_svm(comm, &blocks[comm.rank()], &c)
    });
    let gap0 = results[0].0.trace.initial_value();
    let gap_end = results[0].0.final_value();
    assert!(
        gap_end < gap0,
        "duality gap did not shrink: {gap0} -> {gap_end}"
    );
    // cost counters populated
    assert!(results[0].1.messages > 0);
    assert!(results[0].1.flops > 0);
}

#[test]
fn quick_paper_pipeline_smoke() {
    // Miniature of the full experiment pipeline: generate a stand-in,
    // run classical + SA on the virtual cluster at paper-scale P, check
    // the SA run is faster and numerically identical.
    let g = PaperDataset::Covtype.generate(0.01, 105);
    let lambda = 0.1 * sparsela::vecops::inf_norm(&g.dataset.a.spmv_t(&g.dataset.b));
    let mk = |s: usize| LassoConfig {
        mu: 2,
        s,
        lambda,
        seed: 4,
        max_iters: 96,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let model = CostModel::cray_xc30();
    let (classic, rep_classic) =
        saco::sim::sim_sa_accbcd(&g.dataset, &Lasso::new(lambda), &mk(1), 3072, model, true);
    let (sa, rep_sa) =
        saco::sim::sim_sa_accbcd(&g.dataset, &Lasso::new(lambda), &mk(16), 3072, model, true);
    let rel = (classic.final_value() - sa.final_value()).abs() / classic.final_value();
    assert!(rel < 1e-10, "SA changed the objective: rel {rel}");
    assert!(
        rep_sa.running_time() < rep_classic.running_time(),
        "SA not faster: {} vs {}",
        rep_sa.running_time(),
        rep_classic.running_time()
    );
}
