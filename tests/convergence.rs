//! Convergence-behaviour integration tests: the qualitative facts the
//! paper reads off Figures 2, 3 and 5, checked quantitatively.

use datagen::{PaperDataset, Task};
use saco::problem::{lasso_objective, SvmProblem};
use saco::prox::Lasso;
use saco::seq::{acc_bcd, bcd, sa_accbcd, sa_svm, svm};
use saco::{LassoConfig, SvmConfig, SvmLoss};
use sparsela::io::Dataset;

fn lambda10(ds: &Dataset) -> f64 {
    let atb = ds.a.spmv_t(&ds.b);
    0.1 * sparsela::vecops::inf_norm(&atb)
}

#[test]
fn larger_blocks_converge_faster_per_iteration() {
    // Fig. 2: "larger blocksizes converge faster than µ = 1 ... at the
    // expense of more computation".
    let g = PaperDataset::Epsilon.generate(0.1, 21);
    let lambda = lambda10(&g.dataset);
    let run = |mu: usize| {
        let c = LassoConfig {
            mu,
            s: 1,
            lambda,
            seed: 5,
            max_iters: 400,
            trace_every: 0,
            rel_tol: None,
            ..Default::default()
        };
        bcd(&g.dataset, &Lasso::new(lambda), &c).final_value()
    };
    let f1 = run(1);
    let f8 = run(8);
    assert!(
        f8 < f1,
        "µ=8 should reach a lower objective in equal iterations: {f8} vs {f1}"
    );
}

#[test]
fn accelerated_methods_win_at_high_iteration_counts() {
    // Fig. 2/3: "the accelerated methods converge faster". Acceleration
    // needs θ (which starts at µ/n) to ramp, so measure over many epochs
    // of a moderately sized problem.
    let g = PaperDataset::Epsilon.generate(0.1, 22);
    let lambda = lambda10(&g.dataset);
    let c = LassoConfig {
        mu: 8,
        s: 1,
        lambda,
        seed: 6,
        max_iters: 4000,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let plain = bcd(&g.dataset, &Lasso::new(lambda), &c);
    let acc = acc_bcd(&g.dataset, &Lasso::new(lambda), &c);
    assert!(
        acc.final_value() <= plain.final_value() * 1.02,
        "acc {} vs plain {}",
        acc.final_value(),
        plain.final_value()
    );
}

#[test]
fn output_iterate_matches_traced_objective() {
    let g = PaperDataset::Covtype.generate(0.02, 23);
    let lambda = lambda10(&g.dataset);
    let c = LassoConfig {
        mu: 4,
        s: 16,
        lambda,
        seed: 7,
        max_iters: 600,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let lasso = Lasso::new(lambda);
    let res = sa_accbcd(&g.dataset, &lasso, &c);
    let explicit = lasso_objective(&g.dataset, &lasso, &res.x);
    assert!(
        (explicit - res.final_value()).abs() < 1e-7 * explicit.max(1.0),
        "traced {} vs explicit {}",
        res.final_value(),
        explicit
    );
}

#[test]
fn lasso_kkt_conditions_hold_at_convergence() {
    let g = PaperDataset::Epsilon.generate(0.05, 24);
    let lambda = lambda10(&g.dataset);
    let c = LassoConfig {
        mu: 8,
        s: 8,
        lambda,
        seed: 8,
        max_iters: 20_000,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    // The monotone (non-accelerated) solver settles cleanly onto the KKT
    // manifold; accelerated iterates oscillate near |∇f| = λ boundaries.
    let res = saco::seq::sa_bcd(&g.dataset, &Lasso::new(lambda), &c);
    let mut r = g.dataset.a.spmv(&res.x);
    for (ri, bi) in r.iter_mut().zip(&g.dataset.b) {
        *ri -= bi;
    }
    let grad = g.dataset.a.spmv_t(&r);
    let mut violations = 0;
    for (gj, xj) in grad.iter().zip(&res.x) {
        let ok = if *xj == 0.0 {
            gj.abs() <= lambda * 1.1
        } else {
            (gj + xj.signum() * lambda).abs() <= lambda * 0.1 + 1e-6
        };
        if !ok {
            violations += 1;
        }
    }
    let frac = violations as f64 / res.x.len() as f64;
    assert!(
        frac < 0.02,
        "KKT violated at fraction {frac:.3} of coordinates"
    );
}

#[test]
fn svm_duality_gap_converges_and_l2_is_smoother() {
    let g = PaperDataset::W1a.generate_for_task(Task::Classification, 1.0, 25);
    let run = |loss: SvmLoss| {
        let c = SvmConfig {
            loss,
            lambda: 1.0,
            s: 1,
            seed: 9,
            max_iters: 30_000,
            trace_every: 1000,
            gap_tol: None,
            overlap: true,
        };
        svm(&g.dataset, &c)
    };
    let l1 = run(SvmLoss::L1);
    let l2 = run(SvmLoss::L2);
    assert!(l1.final_value() < 1e-2 * l1.trace.initial_value());
    assert!(l2.final_value() < 1e-2 * l2.trace.initial_value());
    // gaps never significantly negative
    for p in l1.trace.points().iter().chain(l2.trace.points()) {
        assert!(p.value > -1e-8 * l1.trace.initial_value());
    }
}

#[test]
fn svm_classifier_beats_chance_comfortably() {
    let g = PaperDataset::Gisette.generate_for_task(Task::Classification, 0.3, 26);
    let c = SvmConfig {
        loss: SvmLoss::L2,
        lambda: 1.0,
        s: 64,
        seed: 10,
        max_iters: 20_000,
        trace_every: 2000,
        gap_tol: Some(1e-2),
        overlap: true,
    };
    let res = sa_svm(&g.dataset, &c);
    let prob = SvmProblem::new(c.loss, c.lambda);
    let acc = prob.accuracy(&g.dataset.a, &g.dataset.b, &res.x);
    assert!(acc > 0.9, "training accuracy {acc}");
}

#[test]
fn planted_support_is_recovered_on_well_conditioned_data() {
    let a = datagen::uniform_sparse(3000, 300, 0.1, 27);
    let reg_data = datagen::planted_regression(a, 8, 0.05, 27);
    let ds = &reg_data.dataset;
    let lambda = 0.05 * sparsela::vecops::inf_norm(&ds.a.spmv_t(&ds.b));
    let c = LassoConfig {
        mu: 8,
        s: 16,
        lambda,
        seed: 11,
        max_iters: 8000,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let res = sa_accbcd(ds, &Lasso::new(lambda), &c);
    // every planted coordinate is found with the right sign
    for (j, &xs) in reg_data.x_star.iter().enumerate() {
        if xs != 0.0 {
            assert!(
                res.x[j] * xs > 0.0,
                "planted coordinate {j} missed: x={} x*={}",
                res.x[j],
                xs
            );
        }
    }
    // and not too many spurious ones
    let spurious = res
        .x
        .iter()
        .zip(&reg_data.x_star)
        .filter(|(x, xs)| x.abs() > 0.05 && **xs == 0.0)
        .count();
    assert!(spurious <= 20, "{spurious} spurious coordinates");
}

#[test]
fn solvers_reach_the_qr_optimum_when_unregularized() {
    // With λ = 0 the prox is the identity and the solvers do randomized
    // block least squares; the exact optimum comes from Householder QR.
    use sparsela::qr::least_squares;
    let a = datagen::dense_gaussian(120, 24, 31);
    let reg_data = datagen::planted_regression(a, 24, 0.3, 31);
    let ds = &reg_data.dataset;
    let dense = ds.a.to_dense();
    let x_star = least_squares(&dense, &ds.b);
    let f_star = {
        let mut r = ds.a.spmv(&x_star);
        for (ri, bi) in r.iter_mut().zip(&ds.b) {
            *ri -= bi;
        }
        0.5 * sparsela::vecops::nrm2_sq(&r)
    };
    let c = LassoConfig {
        mu: 8,
        s: 16,
        lambda: 0.0,
        seed: 32,
        max_iters: 6000,
        trace_every: 0,
        ..Default::default()
    };
    let res = saco::seq::sa_bcd(ds, &Lasso::new(0.0), &c);
    let rel = (res.final_value() - f_star) / f_star.max(1e-12);
    assert!(
        rel < 1e-3,
        "BCD did not reach the QR optimum: {} vs {}",
        res.final_value(),
        f_star
    );
    // and the iterate itself is close
    let dist = sparsela::vecops::dist2(&res.x, &x_star) / sparsela::vecops::nrm2(&x_star);
    assert!(dist < 0.05, "iterate distance {dist}");
}
