//! Cross-engine equivalence: the sequential reference, the thread-backed
//! distributed SPMD implementation, and the virtual-cluster simulation
//! must all compute the same solutions — at any rank count and unrolling
//! depth, with naive or balanced partitions.

use datagen::{PaperDataset, Task};
use mpisim::{CostModel, ThreadMachine};
use saco::dist::{dist_sa_accbcd, dist_sa_bcd, dist_sa_svm, LassoRankData, SvmRankData};
use saco::prox::Lasso;
use saco::seq;
use saco::sim::{sim_sa_accbcd, sim_sa_bcd, sim_sa_svm};
use saco::{LassoConfig, SvmConfig, SvmLoss};
use sparsela::io::Dataset;

fn lasso_ds() -> Dataset {
    PaperDataset::News20.generate(0.04, 3).dataset
}

fn svm_ds() -> Dataset {
    PaperDataset::W1a
        .generate_for_task(Task::Classification, 0.5, 3)
        .dataset
}

#[test]
fn three_engines_agree_on_acc_lasso() {
    let ds = lasso_ds();
    let cfg = LassoConfig {
        mu: 4,
        s: 8,
        lambda: 0.2,
        seed: 44,
        max_iters: 160,
        trace_every: 40,
        rel_tol: None,
        ..Default::default()
    };
    let reg = Lasso::new(cfg.lambda);
    let seq_res = seq::sa_accbcd(&ds, &reg, &cfg);
    let (sim_res, _) = sim_sa_accbcd(&ds, &reg, &cfg, 6, CostModel::cray_xc30(), false);
    // simulation runs the identical global numerics
    assert_eq!(seq_res.x, sim_res.x);
    // the thread machine re-associates reductions; agreement to 1e-10
    let (_, blocks) = LassoRankData::split(&ds, 6, false);
    let dist = ThreadMachine::run(6, CostModel::cray_xc30(), |comm| {
        dist_sa_accbcd(comm, &blocks[comm.rank()], &reg, &cfg)
    });
    for (r, _) in &dist {
        for (a, b) in r.x.iter().zip(&seq_res.x) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}

#[test]
fn three_engines_agree_on_plain_lasso_balanced_partition() {
    let ds = lasso_ds();
    let cfg = LassoConfig {
        mu: 2,
        s: 16,
        lambda: 0.2,
        seed: 45,
        max_iters: 160,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let reg = Lasso::new(cfg.lambda);
    let seq_res = seq::sa_bcd(&ds, &reg, &cfg);
    let (sim_res, _) = sim_sa_bcd(&ds, &reg, &cfg, 5, CostModel::cray_xc30(), true);
    assert_eq!(seq_res.x, sim_res.x);
    let (_, blocks) = LassoRankData::split(&ds, 5, true);
    let dist = ThreadMachine::run(5, CostModel::cray_xc30(), |comm| {
        dist_sa_bcd(comm, &blocks[comm.rank()], &reg, &cfg)
    });
    let rel = (dist[0].0.final_value() - seq_res.final_value()).abs() / seq_res.final_value();
    assert!(rel < 1e-10, "rel err {rel}");
}

#[test]
fn three_engines_agree_on_svm() {
    let ds = svm_ds();
    for (loss, s, balanced) in [
        (SvmLoss::L1, 1usize, false),
        (SvmLoss::L1, 32, true),
        (SvmLoss::L2, 16, false),
    ] {
        let cfg = SvmConfig {
            loss,
            lambda: 1.0,
            s,
            seed: 46,
            max_iters: 320,
            trace_every: 80,
            gap_tol: None,
            overlap: true,
        };
        let seq_res = seq::sa_svm(&ds, &cfg);
        let (sim_res, _) = sim_sa_svm(&ds, &cfg, 7, CostModel::cray_xc30(), balanced);
        assert_eq!(seq_res.x, sim_res.x, "{loss:?} s={s}");
        let (part, blocks) = SvmRankData::split(&ds, 7, balanced);
        let dist = ThreadMachine::run(7, CostModel::cray_xc30(), |comm| {
            dist_sa_svm(comm, &blocks[comm.rank()], &cfg)
        });
        // concatenate local x slices and compare
        let mut x = Vec::new();
        for (r, (res, _)) in dist.iter().enumerate() {
            assert_eq!(res.x.len(), part.range(r).len());
            x.extend_from_slice(&res.x);
        }
        for (a, b) in x.iter().zip(&seq_res.x) {
            assert!((a - b).abs() < 1e-9, "{loss:?} s={s}: {a} vs {b}");
        }
    }
}

#[test]
fn rank_count_does_not_change_results() {
    let ds = lasso_ds();
    let cfg = LassoConfig {
        mu: 1,
        s: 4,
        lambda: 0.2,
        seed: 47,
        max_iters: 96,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    let reg = Lasso::new(cfg.lambda);
    let mut finals = Vec::new();
    for p in [1usize, 2, 3, 8] {
        let (_, blocks) = LassoRankData::split(&ds, p, false);
        let res = ThreadMachine::run(p, CostModel::cray_xc30(), |comm| {
            dist_sa_accbcd(comm, &blocks[comm.rank()], &reg, &cfg)
        });
        finals.push(res[0].0.final_value());
    }
    for f in &finals[1..] {
        let rel = (f - finals[0]).abs() / finals[0];
        assert!(rel < 1e-10, "objective varies with P: {finals:?}");
    }
}

#[test]
fn virtual_cluster_time_matches_thread_machine_time() {
    // The decisive cross-engine check: *simulated time and counters*, not
    // just numerics, must agree between the thread machine and the virtual
    // cluster when run at the same P with the same charges.
    let ds = lasso_ds();
    let cfg = LassoConfig {
        mu: 2,
        s: 8,
        lambda: 0.2,
        seed: 48,
        max_iters: 64,
        trace_every: 16,
        rel_tol: None,
        ..Default::default()
    };
    let reg = Lasso::new(cfg.lambda);
    let p = 4;
    let (_, blocks) = LassoRankData::split(&ds, p, false);
    let (_, thread_rep) = ThreadMachine::run_report(p, CostModel::cray_xc30(), |comm| {
        dist_sa_accbcd(comm, &blocks[comm.rank()], &reg, &cfg)
    });
    let (_, sim_rep) = sim_sa_accbcd(&ds, &reg, &cfg, p, CostModel::cray_xc30(), false);
    let (t, v) = (thread_rep.critical, sim_rep.critical);
    assert_eq!(t.messages, v.messages, "message counters diverge");
    assert_eq!(t.words, v.words, "word counters diverge");
    assert_eq!(t.flops, v.flops, "flop counters diverge");
    let rel = (thread_rep.running_time() - sim_rep.running_time()).abs() / sim_rep.running_time();
    assert!(
        rel < 1e-9,
        "simulated times diverge: thread {} vs virtual {}",
        thread_rep.running_time(),
        sim_rep.running_time()
    );
}

#[test]
fn virtual_cluster_time_matches_thread_machine_time_svm() {
    let ds = svm_ds();
    let cfg = SvmConfig {
        loss: SvmLoss::L1,
        lambda: 1.0,
        s: 8,
        seed: 49,
        max_iters: 64,
        trace_every: 16,
        gap_tol: None,
        overlap: true,
    };
    let p = 4;
    let (_, blocks) = SvmRankData::split(&ds, p, false);
    let (_, thread_rep) = ThreadMachine::run_report(p, CostModel::cray_xc30(), |comm| {
        dist_sa_svm(comm, &blocks[comm.rank()], &cfg)
    });
    let (_, sim_rep) = sim_sa_svm(&ds, &cfg, p, CostModel::cray_xc30(), false);
    let (t, v) = (thread_rep.critical, sim_rep.critical);
    assert_eq!(t.messages, v.messages, "message counters diverge");
    assert_eq!(t.words, v.words, "word counters diverge");
    assert_eq!(t.flops, v.flops, "flop counters diverge");
    let rel = (thread_rep.running_time() - sim_rep.running_time()).abs() / sim_rep.running_time();
    assert!(rel < 1e-9, "simulated times diverge (rel {rel})");
}
