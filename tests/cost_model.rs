//! Table I validation: the simulator's *measured* critical-path counters
//! must scale exactly as the paper's closed forms predict, and the α-β
//! trade-off must place the speedup optimum at a finite s.

use datagen::{planted_regression, uniform_sparse};
use mpisim::{CostModel, CostReport};
use saco::costmodel::{accbcd_costs, predicted_comm_speedup, sa_accbcd_costs, CostInputs};
use saco::prox::Lasso;
use saco::sim::sim_sa_accbcd;
use saco::LassoConfig;
use sparsela::io::Dataset;

fn problem() -> Dataset {
    let a = uniform_sparse(3000, 800, 0.02, 55);
    planted_regression(a, 10, 0.1, 55).dataset
}

fn run(ds: &Dataset, mu: usize, s: usize, h: usize, p: usize) -> CostReport {
    let cfg = LassoConfig {
        mu,
        s,
        lambda: 0.5,
        seed: 3,
        max_iters: h,
        trace_every: 0,
        rel_tol: None,
        ..Default::default()
    };
    sim_sa_accbcd(ds, &Lasso::new(0.5), &cfg, p, CostModel::cray_xc30(), false).1
}

#[test]
fn latency_scales_as_h_over_s_log_p() {
    let ds = problem();
    let h = 512;
    for p in [64usize, 1024] {
        let lg = (p as f64).log2() as u64;
        for s in [1usize, 4, 16] {
            let rep = run(&ds, 1, s, h, p);
            // H/s outer collectives + 2 bookkeeping reductions, ⌈log₂P⌉
            // rounds each — exactly.
            let expect = ((h / s) as u64 + 2) * lg;
            assert_eq!(rep.critical.messages, expect, "P={p} s={s}");
        }
    }
}

#[test]
fn bandwidth_grows_linearly_in_s() {
    // Table I: W = O(Hsµ² log P). At fixed H, doubling s should roughly
    // double the words on the critical path (packed symmetric Gram ⇒ the
    // constant is ~half of the naive s²µ² payload per outer).
    let ds = problem();
    let h = 512;
    let w8 = run(&ds, 1, 8, h, 256).critical.words;
    let w16 = run(&ds, 1, 16, h, 256).critical.words;
    let w32 = run(&ds, 1, 32, h, 256).critical.words;
    let r1 = w16 as f64 / w8 as f64;
    let r2 = w32 as f64 / w16 as f64;
    assert!((1.6..=2.4).contains(&r1), "W ratio s16/s8 = {r1}");
    assert!((1.6..=2.4).contains(&r2), "W ratio s32/s16 = {r2}");
}

#[test]
fn flops_grow_with_s_via_the_gram_term() {
    // Table I: F = O(Hµ²sfm/P + Hµ³) — the Gram term scales with s. The
    // measured total also *shrinks* with s through the per-round software
    // overhead SA amortizes (that modeled saving is the computation
    // speedup of Fig. 4e–h), so add that known saving back before
    // comparing the Gram growth.
    let ds = problem();
    let h = 256usize;
    let f1 = run(&ds, 4, 1, h, 1).critical.flops;
    let f32 = run(&ds, 4, 32, h, 1).critical.flops;
    let overhead_saved = (h as u64 - (h / 32) as u64) * saco::dist::charges::OUTER_OVERHEAD_FLOPS;
    let adjusted = f32 + overhead_saved;
    assert!(
        adjusted > f1 + f1 / 10,
        "Gram flops must grow noticeably with s: {f1} -> {adjusted} (raw {f32})"
    );
    // ...but by far less than 32× (the µ³ and per-iteration terms do not
    // scale with s).
    assert!(
        adjusted < 32 * f1,
        "flops grew superlinearly: {f1} -> {adjusted}"
    );
}

#[test]
fn memory_formula_matches_gram_growth() {
    let base = CostInputs {
        h: 1000,
        mu: 4,
        s: 8,
        f: 0.02,
        m: 3000,
        n: 800,
        p: 64,
    };
    let m_s8 = sa_accbcd_costs(&base).memory;
    let m_s16 = sa_accbcd_costs(&CostInputs { s: 16, ..base }).memory;
    let gram_delta = (16.0f64.powi(2) - 8.0f64.powi(2)) * (base.mu * base.mu) as f64;
    assert!(((m_s16 - m_s8) - gram_delta).abs() < 1e-9);
}

#[test]
fn speedup_has_an_interior_optimum() {
    // §III: "In general there exists a tradeoff between s and the speedups
    // attainable" — the total simulated time is minimized at 1 < s* < ∞.
    let ds = problem();
    let h = 512;
    let p = 2048;
    let times: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&s| (s, run(&ds, 1, s, h, p).running_time()))
        .collect();
    let (s_best, t_best) = times
        .iter()
        .cloned()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    let t1 = times[0].1;
    let t_last = times.last().expect("nonempty").1;
    assert!(s_best > 1, "optimum should not be the classical method");
    assert!(s_best < 256, "optimum should be interior, got s={s_best}");
    assert!(t_best < t1, "SA should beat classical");
    assert!(
        t_last > t_best,
        "time should rise again at huge s: {t_last} vs {t_best}"
    );
}

#[test]
fn analytic_model_agrees_with_simulator_on_the_trend() {
    // The closed-form α-β prediction and the simulator must agree on
    // *ordering*: which of two s values communicates cheaper.
    let ds = problem();
    let model = CostModel::cray_xc30();
    let h = 256;
    let p = 1024;
    let inputs = |s: u64| CostInputs {
        h: h as u64,
        mu: 1,
        s,
        f: ds.a.density(),
        m: ds.a.rows() as u64,
        n: ds.a.cols() as u64,
        p: p as u64,
    };
    for (s_a, s_b) in [(1u64, 8u64), (8, 64), (64, 512)] {
        let pred_a = predicted_comm_speedup(&inputs(s_a), model.alpha, model.beta);
        let pred_b = predicted_comm_speedup(&inputs(s_b), model.alpha, model.beta);
        let rep_a = run(&ds, 1, s_a as usize, h, p);
        let rep_b = run(&ds, 1, s_b as usize, h, p);
        let meas_a = 1.0 / (rep_a.critical.comm_time + rep_a.critical.idle_time);
        let meas_b = 1.0 / (rep_b.critical.comm_time + rep_b.critical.idle_time);
        assert_eq!(
            pred_a > pred_b,
            meas_a > meas_b,
            "model and simulator disagree on ordering of s={s_a} vs s={s_b}"
        );
    }
}

#[test]
fn closed_forms_reproduce_the_headline_ratios() {
    let c = CostInputs {
        h: 10_000,
        mu: 8,
        s: 32,
        f: 0.01,
        m: 1_000_000,
        n: 100_000,
        p: 12_288,
    };
    let classic = accbcd_costs(&c);
    let sa = sa_accbcd_costs(&c);
    assert!((classic.latency / sa.latency - 32.0).abs() < 1e-9);
    assert!((sa.bandwidth / classic.bandwidth - 32.0).abs() < 1e-9);
}
