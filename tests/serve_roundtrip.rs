//! End-to-end `saco serve` round trips over a real Unix socket.
//!
//! Three exactness contracts, each pinned bitwise:
//!
//! * **Score ≡ SpMV** — a served score batch equals `CsrMatrix::spmv` on
//!   the same rows bit for bit (both are the same serial dot chain).
//! * **Train-delta ≡ uncut run** — resuming a `t`-iteration artifact
//!   (`t` a multiple of `s`) for `k` more iterations lands on the exact
//!   bits of training `t + k` from scratch: the artifact restored the
//!   iterate, the residual bits, and the replayed RNG.
//! * **Path serving ≡ `lasso_path`** — grid-order path-point requests
//!   reproduce the offline path's objectives bitwise (the server's path
//!   chain cold-starts at the artifact seed), and an exact-λ repeat is a
//!   cache hit.

use datagen::{planted_regression, uniform_sparse};
use saco::path::lasso_path;
use saco::prox::Lasso;
use saco::serve::{serve, Addr, Listener, ModelArtifact, ServeClient, ServeConfig, ServeReport};
use saco::LassoConfig;
use saco_telemetry::Registry;
use sparsela::io::Dataset;

fn problem() -> Dataset {
    let a = uniform_sparse(200, 60, 0.2, 11);
    planted_regression(a, 5, 0.05, 11).dataset
}

fn train_cfg() -> LassoConfig {
    LassoConfig {
        mu: 4,
        s: 8,
        lambda: 0.1,
        seed: 3,
        max_iters: 160, // a multiple of s: resume lands on a block boundary
        trace_every: 0,
        ..Default::default()
    }
}

fn sock_addr(tag: &str) -> Addr {
    let path = std::env::temp_dir().join(format!("saco-serve-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Addr::Unix(path)
}

/// Boot a server on a Unix socket, hand a connected client to `f`, shut
/// down cleanly, and return the server's report.
fn with_server<F>(
    tag: &str,
    ds: Dataset,
    art: ModelArtifact,
    scfg: ServeConfig,
    f: F,
) -> ServeReport
where
    F: FnOnce(&Addr, &mut ServeClient),
{
    let addr = sock_addr(tag);
    let listener = Listener::bind(&addr).expect("bind serve socket");
    let server = std::thread::spawn(move || {
        let mut reg = Registry::new();
        serve(&listener, &ds, art, &scfg, &mut reg).expect("serve run")
    });
    let mut client = ServeClient::connect_default(&addr).expect("connect");
    f(&addr, &mut client);
    client.shutdown().expect("shutdown");
    server.join().expect("server thread")
}

fn rows_of(ds: &Dataset) -> Vec<(Vec<usize>, Vec<f64>)> {
    (0..ds.a.rows())
        .map(|i| {
            let r = ds.a.row(i);
            (r.indices.to_vec(), r.values.to_vec())
        })
        .collect()
}

#[test]
fn served_scores_match_spmv_bitwise() {
    let ds = problem();
    let art = ModelArtifact::train_lasso(&ds, &Lasso::new(0.1), 0.1, &train_cfg());
    let expect = ds.a.spmv(&art.x);
    let rows = rows_of(&ds);
    let ds_for_server = ds.clone();
    let report = with_server(
        "score",
        ds_for_server,
        art,
        ServeConfig::default(),
        |_, client| {
            // Split across two batches so the admission path sees both a
            // full and a partial batch.
            let mid = rows.len() / 2;
            let mut preds = client.score(rows[..mid].to_vec()).expect("score");
            preds.extend(client.score(rows[mid..].to_vec()).expect("score"));
            assert_eq!(preds.len(), expect.len());
            for (i, (p, e)) in preds.iter().zip(&expect).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    e.to_bits(),
                    "served score for row {i} diverged from spmv"
                );
            }
        },
    );
    assert_eq!(report.protocol_errors, 0);
    assert!(report.requests >= 3); // two score batches + shutdown
}

#[test]
fn train_delta_resumes_bitwise() {
    let ds = problem();
    let cfg = train_cfg();
    let art = ModelArtifact::train_lasso(&ds, &Lasso::new(0.1), 0.1, &cfg);
    // The uncut reference: 160 + 80 iterations in one run.
    let full_cfg = LassoConfig {
        max_iters: 240,
        ..cfg.clone()
    };
    let direct = saco::seq::sa_bcd(&ds, &Lasso::new(0.1), &full_cfg);
    let expect_scores = ds.a.spmv(&direct.x);
    let rows = rows_of(&ds);
    let ds_for_server = ds.clone();
    let report = with_server(
        "train",
        ds_for_server,
        art,
        ServeConfig::default(),
        |_, client| {
            let (objective, _nnz, total_iters) = client.train_delta(0.1, 80).expect("train delta");
            assert_eq!(total_iters, 240);
            assert_eq!(
                objective.to_bits(),
                direct.final_value().to_bits(),
                "resumed objective diverged from the uncut run"
            );
            // The resumed iterate itself must match: score through it.
            let preds = client.score(rows).expect("score after delta");
            for (p, e) in preds.iter().zip(&expect_scores) {
                assert_eq!(p.to_bits(), e.to_bits());
            }
        },
    );
    assert_eq!(report.protocol_errors, 0);
}

#[test]
fn path_points_match_lasso_path_and_cache_hits() {
    let ds = problem();
    let cfg = train_cfg();
    let art = ModelArtifact::train_lasso(&ds, &Lasso::new(0.1), 0.1, &cfg);
    let offline = lasso_path(&ds, &cfg, 5, 0.01, Lasso::new);
    let budget = cfg.max_iters as u64;
    let ds_for_server = ds.clone();
    let report = with_server(
        "path",
        ds_for_server,
        art,
        ServeConfig::default(),
        |_, client| {
            for (k, p) in offline.points.iter().enumerate() {
                let (objective, nnz, cached) =
                    client.path_point(p.lambda, budget).expect("path point");
                assert!(!cached, "first visit of point {k} cannot be cached");
                assert_eq!(
                    objective.to_bits(),
                    p.objective.to_bits(),
                    "served path point {k} diverged from lasso_path"
                );
                assert_eq!(nnz as usize, p.nonzeros);
            }
            // Exact-λ repeat: answered from the cache, same bits.
            let p2 = &offline.points[2];
            let (objective, _, cached) =
                client.path_point(p2.lambda, budget).expect("cached point");
            assert!(cached, "exact-λ repeat must be a cache hit");
            assert_eq!(objective.to_bits(), p2.objective.to_bits());
        },
    );
    assert_eq!(report.protocol_errors, 0);
}

#[test]
fn score_only_artifacts_refuse_training() {
    let ds = problem();
    let cfg = train_cfg();
    let lasso = ModelArtifact::train_lasso(&ds, &Lasso::new(0.1), 0.1, &cfg);
    // Strip the residual: same solution, but no resume provenance.
    let score_only = ModelArtifact::from_solution(
        "svm",
        &ds,
        &cfg,
        0.1,
        lasso.x.clone(),
        lasso.iters,
        lasso.initial_obj,
        lasso.final_obj,
    );
    assert!(!score_only.resumable());
    let ds_for_server = ds.clone();
    with_server(
        "refuse",
        ds_for_server,
        score_only,
        ServeConfig::default(),
        |_, client| {
            assert!(
                client.train_delta(0.1, 8).is_err(),
                "a score-only artifact must refuse train-delta"
            );
            assert!(client.path_point(0.1, 8).is_err());
            // Scoring still works.
            let preds = client.score(rows_of(&ds)).expect("score");
            let expect = ds.a.spmv(&lasso.x);
            for (p, e) in preds.iter().zip(&expect) {
                assert_eq!(p.to_bits(), e.to_bits());
            }
        },
    );
}

#[test]
fn concurrent_clients_all_get_exact_answers() {
    let ds = problem();
    let art = ModelArtifact::train_lasso(&ds, &Lasso::new(0.1), 0.1, &train_cfg());
    let expect = ds.a.spmv(&art.x);
    let rows = rows_of(&ds);
    let ds_for_server = ds.clone();
    let report = with_server(
        "concurrent",
        ds_for_server,
        art,
        ServeConfig::default(),
        |addr, _| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let addr = addr.clone();
                    let rows = rows.clone();
                    let expect = expect.clone();
                    std::thread::spawn(move || {
                        let mut c = ServeClient::connect_default(&addr).expect("connect");
                        for _ in 0..3 {
                            let preds = c.score(rows.clone()).expect("score");
                            for (p, e) in preds.iter().zip(&expect) {
                                assert_eq!(p.to_bits(), e.to_bits());
                            }
                        }
                        c.bye();
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("client thread");
            }
        },
    );
    assert_eq!(report.protocol_errors, 0);
    assert!(report.requests >= 13); // 4 clients × 3 batches + shutdown
}
